package health

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"loadbalance/internal/trace"
)

// The flight recorder turns "something went wrong" into a self-contained
// bundle on disk: one directory under <data-dir>/flightrec/ holding the
// trace ring, log ring, a metrics snapshot, and alert state as they were
// at the moment of the trigger. Bundles are written to a temp directory
// and renamed into place so a crash mid-dump never leaves a half bundle
// with a valid name, and only the newest N are kept.

// BundleMeta is the bundle's meta.json.
type BundleMeta struct {
	Proc    string  `json:"proc"`
	Reason  string  `json:"reason"`
	Detail  string  `json:"detail,omitempty"`
	WhenUs  int64   `json:"whenUs"`
	Slowest string  `json:"slowestSession,omitempty"` // slowest session.open span's session id
	Score   float64 `json:"feedbackScore"`
	Firing  int     `json:"alertsFiring"`
	Layout  string  `json:"layout"` // documents the bundle contents
}

// Recorder dumps flight-recorder bundles.
type Recorder struct {
	dir    string // <data-dir>/flightrec
	keep   int
	logger *Logger
	scorer *Scorer // may be nil
	engine *Engine // may be nil
	// MetricsFn writes the process's full /metrics document (the command
	// wires its own composition of writers here).
	MetricsFn func(w io.Writer)
	// ProfileDur > 0 adds runtime profiles to each bundle: heap.pprof
	// inline, plus a CPU profile of this duration captured asynchronously
	// (cpu.pprof appears in the bundle once the capture window closes, so
	// the triggering path — an alert inside the tick loop — never blocks
	// on it). Set before the first Dump.
	ProfileDur time.Duration

	mu        sync.Mutex // serialises dumps
	seq       int        // disambiguates bundles within the same second
	cpuBusy   atomic.Bool
	profileWG sync.WaitGroup
}

// NewRecorder builds a recorder rooted at dir (created on first dump).
// keep <= 0 means keep 8.
func NewRecorder(dir string, keep int, logger *Logger) *Recorder {
	if keep <= 0 {
		keep = 8
	}
	return &Recorder{dir: dir, keep: keep, logger: logger}
}

// Bind attaches the score and alert state to subsequent bundles.
func (r *Recorder) Bind(scorer *Scorer, engine *Engine) {
	r.mu.Lock()
	r.scorer = scorer
	r.engine = engine
	r.mu.Unlock()
}

// Dir returns the bundle root.
func (r *Recorder) Dir() string { return r.dir }

func (r *Recorder) log() *Logger {
	if r.logger != nil {
		return r.logger
	}
	return Default()
}

// Dump writes one bundle and returns its directory. reason is a short
// token ("alert", "panic", "shutdown"); detail is free text (the alert
// name, the panic value).
func (r *Recorder) Dump(reason, detail string) (string, error) {
	if r == nil {
		return "", nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	now := time.Now()
	r.seq++
	name := fmt.Sprintf("%s-%s-%03d", now.UTC().Format("20060102T150405Z"), reason, r.seq)
	tmp := filepath.Join(r.dir, ".tmp-"+name)
	final := filepath.Join(r.dir, name)

	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return "", fmt.Errorf("health: flightrec: %w", err)
	}
	defer os.RemoveAll(tmp) // no-op after successful rename

	traceDump := trace.Snapshot(trace.Filter{})
	meta := BundleMeta{
		Proc:    r.log().Proc(),
		Reason:  reason,
		Detail:  detail,
		WhenUs:  now.UnixMicro(),
		Slowest: slowestSession(traceDump.Spans),
		Layout:  "meta.json trace.json logs.json metrics.prom alerts.json",
	}
	if r.ProfileDur > 0 {
		meta.Layout += " heap.pprof cpu.pprof"
	}
	if r.scorer != nil {
		meta.Score = r.scorer.Value()
	}
	if r.engine != nil {
		meta.Firing = r.engine.FiringCount()
	}

	steps := []struct {
		file  string
		write func(w io.Writer) error
	}{
		{"meta.json", func(w io.Writer) error { return writeMetaJSON(w, &meta) }},
		{"trace.json", func(w io.Writer) error { return trace.WriteDump(w, trace.Filter{}) }},
		{"logs.json", func(w io.Writer) error { return WriteLogDump(w, r.log(), LogFilter{}) }},
		{"metrics.prom", func(w io.Writer) error {
			if r.MetricsFn != nil {
				r.MetricsFn(w)
				return nil
			}
			// No command-wired composition: fall back to the families the
			// health layer owns plus the trace histograms.
			WriteLogMetrics(w, r.log())
			if r.scorer != nil {
				WriteScoreMetrics(w, r.scorer)
			}
			if r.engine != nil {
				WriteAlertMetrics(w, r.engine)
			}
			trace.WriteMetrics(w)
			return nil
		}},
		{"alerts.json", func(w io.Writer) error {
			var alerts []AlertStatus
			if r.engine != nil {
				alerts = r.engine.Status()
			}
			writeAlertsJSON(w, alerts)
			return nil
		}},
	}
	if r.ProfileDur > 0 {
		steps = append(steps, struct {
			file  string
			write func(w io.Writer) error
		}{"heap.pprof", func(w io.Writer) error { return pprof.WriteHeapProfile(w) }})
	}
	for _, s := range steps {
		if err := writeBundleFile(filepath.Join(tmp, s.file), s.write); err != nil {
			return "", fmt.Errorf("health: flightrec %s: %w", s.file, err)
		}
	}
	if err := os.Rename(tmp, final); err != nil {
		return "", fmt.Errorf("health: flightrec: %w", err)
	}
	r.pruneLocked()
	if r.ProfileDur > 0 {
		r.startCPUProfile(final)
	}
	r.log().Log(Info, "flightrec", "bundle written",
		Str("reason", reason), Str("detail", detail), Str("dir", final))
	return final, nil
}

// startCPUProfile captures cpu.pprof into an already-renamed bundle in
// the background. Only one capture runs at a time (the runtime allows a
// single CPU profile per process); overlapping dumps skip theirs and log
// the gap rather than queueing behind a 2s window.
func (r *Recorder) startCPUProfile(bundleDir string) {
	if !r.cpuBusy.CompareAndSwap(false, true) {
		r.log().Log(Info, "flightrec", "cpu profile skipped (capture in progress)",
			Str("dir", bundleDir))
		return
	}
	path := filepath.Join(bundleDir, "cpu.pprof")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		r.cpuBusy.Store(false)
		return
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		os.Remove(path)
		r.cpuBusy.Store(false)
		r.log().Log(Info, "flightrec", "cpu profile unavailable", Str("err", err.Error()))
		return
	}
	dur := r.ProfileDur
	r.profileWG.Add(1)
	go func() {
		defer r.profileWG.Done()
		defer r.cpuBusy.Store(false)
		timer := time.NewTimer(dur) //gridlint:allow walltime(profile capture window is a genuine wall-clock measurement)
		<-timer.C
		pprof.StopCPUProfile()
		f.Close()
	}()
}

// WaitProfiles blocks until any in-flight CPU profile capture finishes —
// shutdown paths and tests call it so bundles are complete on disk.
func (r *Recorder) WaitProfiles() {
	if r == nil {
		return
	}
	r.profileWG.Wait()
}

func writeBundleFile(path string, write func(w io.Writer) error) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeMetaJSON(w io.Writer, m *BundleMeta) error {
	b := make([]byte, 0, 256)
	b = append(b, `{"proc":`...)
	b = strconv.AppendQuote(b, m.Proc)
	b = append(b, `,"reason":`...)
	b = strconv.AppendQuote(b, m.Reason)
	if m.Detail != "" {
		b = append(b, `,"detail":`...)
		b = strconv.AppendQuote(b, m.Detail)
	}
	b = append(b, `,"whenUs":`...)
	b = strconv.AppendInt(b, m.WhenUs, 10)
	if m.Slowest != "" {
		b = append(b, `,"slowestSession":`...)
		b = strconv.AppendQuote(b, m.Slowest)
	}
	b = append(b, `,"feedbackScore":`...)
	b = strconv.AppendFloat(b, m.Score, 'g', -1, 64)
	b = append(b, `,"alertsFiring":`...)
	b = strconv.AppendInt(b, int64(m.Firing), 10)
	b = append(b, `,"layout":`...)
	b = strconv.AppendQuote(b, m.Layout)
	b = append(b, "}\n"...)
	_, err := w.Write(b)
	return err
}

// slowestSession returns the session label of the longest session.open
// span in the snapshot — the negotiation an operator wants to look at
// first after an overload.
func slowestSession(spans []trace.Record) string {
	var best string
	var bestDur int64 = -1
	for i := range spans {
		if spans[i].Name == "session.open" && spans[i].DurUs > bestDur {
			bestDur = spans[i].DurUs
			best = spans[i].Session
		}
	}
	return best
}

// pruneLocked removes the oldest bundles beyond keep, plus any stale
// temp dirs from crashed dumps. Bundle names sort chronologically.
func (r *Recorder) pruneLocked() {
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return
	}
	var bundles []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if len(e.Name()) > 4 && e.Name()[:5] == ".tmp-" {
			os.RemoveAll(filepath.Join(r.dir, e.Name()))
			continue
		}
		bundles = append(bundles, e.Name())
	}
	sort.Strings(bundles)
	for len(bundles) > r.keep {
		os.RemoveAll(filepath.Join(r.dir, bundles[0]))
		bundles = bundles[1:]
	}
}

// ----- crash-dump hook -----

// activeRecorder backs CrashDump so defer/recover sites deep in main can
// trigger a bundle without threading the recorder through every layer.
var activeRecorder atomic.Pointer[Recorder]

// SetRecorder installs the process-wide recorder for CrashDump.
func SetRecorder(r *Recorder) { activeRecorder.Store(r) }

// CrashDump writes a bundle through the process-wide recorder (no-op if
// none is installed). Safe to call from recover handlers.
func CrashDump(reason, detail string) string {
	r := activeRecorder.Load()
	if r == nil {
		return ""
	}
	dir, err := r.Dump(reason, detail)
	if err != nil {
		fmt.Fprintf(os.Stderr, "health: crash dump failed: %v\n", err) //gridlint:allow structuredlog(crash-dump failure is the last resort; the logger may be the thing that is broken)
	}
	return dir
}
