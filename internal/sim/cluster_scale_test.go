package sim

import (
	"strings"
	"testing"
)

// TestE11ClusterScale runs a small sweep and checks flat and sharded runs
// agree on the final overuse (the overuse_match column) and that every run
// terminates.
func TestE11ClusterScale(t *testing.T) {
	tab, err := E11ClusterScale([]int{40}, []int{2, 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 { // flat + two shard counts
		t.Fatalf("rows = %d:\n%s", len(tab.Rows), tab)
	}
	for _, row := range tab.Rows {
		if row[8] == "" || row[8] == "continue" {
			t.Fatalf("non-terminal outcome in row %v", row)
		}
		if match := row[7]; match != "-" && match != "yes" {
			t.Fatalf("sharded overuse diverged from flat: %v", row)
		}
	}
	if !strings.Contains(tab.String(), "E11ClusterScale") {
		t.Fatal("table name missing")
	}
	if _, err := E11ClusterScale(nil, nil, 1); err == nil {
		t.Fatal("empty sweep should fail")
	}
}
