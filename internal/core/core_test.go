package core

import (
	"errors"
	"testing"
	"time"

	"loadbalance/internal/customeragent"
	"loadbalance/internal/protocol"
	"loadbalance/internal/units"
	"loadbalance/internal/utilityagent"
)

func runPaper(t *testing.T) *Result {
	t.Helper()
	s, err := PaperScenario()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AgentErrors) != 0 {
		t.Fatalf("agent errors: %v", res.AgentErrors)
	}
	return res
}

// TestPaperScenarioGoldenE2E3 is the E2/E3 golden: the full Figures 6-7
// trajectory. Round 1 announces reward 17 at cut-down 0.4 with predicted
// overuse 35 (Figure 6); the negotiation runs exactly three rounds; the
// round-3 table offers ≈24.8 at 0.4 and the overuse ends ≈12-13 (Figure 7).
func TestPaperScenarioGoldenE2E3(t *testing.T) {
	res := runPaper(t)

	if res.Method != utilityagent.MethodRewardTable {
		t.Fatalf("method = %v", res.Method)
	}
	if res.Outcome != protocol.OutcomeConverged.String() {
		t.Fatalf("outcome = %q", res.Outcome)
	}
	if res.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3", res.Rounds)
	}
	if !units.NearlyEqual(res.InitialOveruseKWh, 35, 1e-9) {
		t.Fatalf("initial overuse = %v, want 35 (Figure 6)", res.InitialOveruseKWh)
	}

	h := res.History
	// Figure 6: round-1 table is linear with 17 at 0.4.
	r1, ok := h[0].Table.RewardFor(0.4)
	if !ok || !units.NearlyEqual(r1, 17, 1e-9) {
		t.Fatalf("round-1 reward(0.4) = %v, want 17", r1)
	}
	if r, _ := h[0].Table.RewardFor(0.1); !units.NearlyEqual(r, 4.25, 1e-9) {
		t.Fatalf("round-1 reward(0.1) = %v, want 4.25", r)
	}
	// Calibrated trajectory: overuse 21.5 → 14.75 → 12.05 kWh.
	wantOveruse := []float64{21.5, 14.75, 12.05}
	for i, rec := range h {
		if !units.NearlyEqual(rec.OveruseKWh, wantOveruse[i], 0.01) {
			t.Fatalf("round %d overuse = %v, want %v", rec.Round, rec.OveruseKWh, wantOveruse[i])
		}
	}
	// Figure 7: round-3 reward at 0.4 is 24.8 (paper) — ours within 0.5.
	r3, ok := h[2].Table.RewardFor(0.4)
	if !ok || !units.NearlyEqual(r3, 24.8, 0.5) {
		t.Fatalf("round-3 reward(0.4) = %v, want 24.8±0.5", r3)
	}
	// And the analytic value of the calibration is 24.81 ± 0.01.
	if !units.NearlyEqual(r3, 24.806, 0.01) {
		t.Fatalf("round-3 reward(0.4) = %v, want 24.806 (calibrated)", r3)
	}
	// Final overuse ≈ 12-13 ("the predicted overuse has been reduced to 13").
	if res.FinalOveruseKWh < 10 || res.FinalOveruseKWh > 13 {
		t.Fatalf("final overuse = %v, want ≈12-13", res.FinalOveruseKWh)
	}
	// Monotonic concession across announcements.
	for i := 1; i < len(h); i++ {
		if !h[i].Table.DominatesOrEqual(h[i-1].Table) {
			t.Fatalf("round %d table does not dominate round %d", h[i].Round, h[i-1].Round)
		}
	}
}

// TestPaperScenarioGoldenE4 is the E4 golden: the Figures 8-9 customer
// chooses 0.2 in round 1 and 0.4 in rounds 2 and 3.
func TestPaperScenarioGoldenE4(t *testing.T) {
	res := runPaper(t)
	bids := BidsOf(res.History, "c01")
	want := []float64{0.2, 0.4, 0.4}
	if len(bids) != len(want) {
		t.Fatalf("bids = %v", bids)
	}
	for i := range want {
		if !units.NearlyEqual(bids[i], want[i], 1e-12) {
			t.Fatalf("c01 round %d bid = %v, want %v", i+1, bids[i], want[i])
		}
	}
	// The award the customer receives matches the final table.
	var c01Award *protocol.CustomerAward
	for i := range res.Awards {
		if res.Awards[i].Customer == "c01" {
			c01Award = &res.Awards[i]
		}
	}
	if c01Award == nil {
		t.Fatal("c01 received no award")
	}
	if !units.NearlyEqual(c01Award.Award.CutDown, 0.4, 1e-12) {
		t.Fatalf("c01 award cut-down = %v", c01Award.Award.CutDown)
	}
	if !units.NearlyEqual(c01Award.Award.Reward, 24.806, 0.01) {
		t.Fatalf("c01 award reward = %v, want ≈24.81", c01Award.Award.Reward)
	}
}

func TestPaperScenarioFleetBids(t *testing.T) {
	res := runPaper(t)
	// Final bids per the calibration: c01 0.4; c02-c03 0.3; c04-c05 0.2;
	// c06-c08 0.1; c09-c10 0.
	want := map[string]float64{
		"c01": 0.4, "c02": 0.3, "c03": 0.3, "c04": 0.2, "c05": 0.2,
		"c06": 0.1, "c07": 0.1, "c08": 0.1, "c09": 0, "c10": 0,
	}
	for name, wantBid := range want {
		if got := res.FinalBids[name]; !units.NearlyEqual(got, wantBid, 1e-12) {
			t.Fatalf("%s final bid = %v, want %v", name, got, wantBid)
		}
	}
	// Total reward paid: awards priced by the final (round 3) table.
	if !units.NearlyEqual(res.TotalReward, 105.42, 0.2) {
		t.Fatalf("total reward = %v, want ≈105.4", res.TotalReward)
	}
}

func TestScenarioValidation(t *testing.T) {
	valid, err := PaperScenario()
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{name: "empty session", mutate: func(s *Scenario) { s.SessionID = "" }},
		{name: "no customers", mutate: func(s *Scenario) { s.Customers = nil }},
		{name: "zero capacity", mutate: func(s *Scenario) { s.NormalUse = 0 }},
		{name: "duplicate customer", mutate: func(s *Scenario) { s.Customers[1].Name = s.Customers[0].Name }},
		{name: "unnamed customer", mutate: func(s *Scenario) { s.Customers[0].Name = "" }},
		{name: "drops without timeout", mutate: func(s *Scenario) { s.DropRate = 0.1 }},
		{name: "silent without timeout", mutate: func(s *Scenario) { s.Customers[0].Silent = true }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s, err := PaperScenario()
			if err != nil {
				t.Fatal(err)
			}
			tt.mutate(&s)
			if err := s.Validate(); !errors.Is(err, ErrBadScenario) {
				t.Fatalf("error = %v, want ErrBadScenario", err)
			}
		})
	}
	if err := valid.Validate(); err != nil {
		t.Fatalf("paper scenario invalid: %v", err)
	}
}

func TestRunRejectsInvalidScenario(t *testing.T) {
	if _, err := Run(Scenario{}); !errors.Is(err, ErrBadScenario) {
		t.Fatalf("error = %v", err)
	}
}

func TestPopulationScenario(t *testing.T) {
	s, err := PopulationScenario(PopulationConfig{N: 12, Seed: 7, Margin: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Customers) != 12 {
		t.Fatalf("customers = %d", len(s.Customers))
	}
	// Target overuse 0.35 by construction.
	ratio := protocol.OveruseRatio(s.Loads(), s.NormalUse)
	if !units.NearlyEqual(ratio, 0.35, 1e-6) {
		t.Fatalf("initial ratio = %v, want 0.35", ratio)
	}
	if _, err := PopulationScenario(PopulationConfig{N: 0}); !errors.Is(err, ErrBadScenario) {
		t.Fatal("empty population should fail")
	}
}

// TestPopulationNegotiationReducesPeak is the E5-style smoke test: a
// synthetic population negotiates and the peak shrinks.
func TestPopulationNegotiationReducesPeak(t *testing.T) {
	s, err := PopulationScenario(PopulationConfig{N: 20, Seed: 3, Margin: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AgentErrors) != 0 {
		t.Fatalf("agent errors: %v", res.AgentErrors)
	}
	if res.FinalOveruseKWh >= res.InitialOveruseKWh {
		t.Fatalf("overuse did not shrink: %v → %v", res.InitialOveruseKWh, res.FinalOveruseKWh)
	}
	if res.Bus.Sent == 0 || res.Bus.Delivered == 0 {
		t.Fatalf("bus stats = %+v", res.Bus)
	}
}

// TestLossyRunStillTerminates is the E9 liveness test: with 10% message
// loss and round timeouts, the negotiation still reaches a terminal state.
func TestLossyRunStillTerminates(t *testing.T) {
	s, err := PaperScenario()
	if err != nil {
		t.Fatal(err)
	}
	s.DropRate = 0.1
	s.Seed = 17
	s.RoundTimeout = 25 * time.Millisecond
	s.Timeout = 20 * time.Second
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome == "" || res.Rounds == 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.Bus.Dropped == 0 {
		t.Fatal("expected some dropped messages at 10% loss")
	}
}

// TestSilentCustomersRun covers the other E9 axis: a third of the fleet
// never responds, and the negotiation still terminates with the remaining
// customers carrying the reduction.
func TestSilentCustomersRun(t *testing.T) {
	s, err := PaperScenario()
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Customers {
		if i%3 == 0 {
			s.Customers[i].Silent = true
		}
	}
	s.RoundTimeout = 25 * time.Millisecond
	s.Timeout = 20 * time.Second
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome == "" {
		t.Fatalf("result = %+v", res)
	}
	for i, spec := range s.Customers {
		if spec.Silent {
			if _, ok := res.FinalBids[spec.Name]; ok {
				t.Fatalf("silent customer %d has a recorded bid", i)
			}
		}
	}
}

// TestOfferMethodOnPaperScenario runs E5's offer arm on the canonical fleet.
func TestOfferMethodOnPaperScenario(t *testing.T) {
	s, err := PaperScenario()
	if err != nil {
		t.Fatal(err)
	}
	s.Method = utilityagent.MethodOffer
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != utilityagent.MethodOffer || res.Offer == nil {
		t.Fatalf("result = %+v", res)
	}
	if res.Rounds != 1 {
		t.Fatalf("offer rounds = %d", res.Rounds)
	}
	if got := res.Offer.Accepted + res.Offer.Declined + res.Offer.Silent; got != len(s.Customers) {
		t.Fatalf("offer replies = %d", got)
	}
}

// TestRFBMethodOnPaperScenario runs E5's request-for-bids arm.
func TestRFBMethodOnPaperScenario(t *testing.T) {
	s, err := PaperScenario()
	if err != nil {
		t.Fatal(err)
	}
	s.Method = utilityagent.MethodRequestForBids
	s.RFB = protocol.RFBParams{
		LowPrice: 0.5, NormalPrice: 1, HighPrice: 4,
		AllowedOveruseRatio: 0.13,
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != utilityagent.MethodRequestForBids {
		t.Fatalf("method = %v", res.Method)
	}
	if res.Rounds == 0 || len(res.RFBHistory) != res.Rounds {
		t.Fatalf("rounds = %d, history = %d", res.Rounds, len(res.RFBHistory))
	}
	if res.FinalOveruseKWh >= res.InitialOveruseKWh {
		t.Fatalf("rfb did not reduce overuse: %v → %v", res.InitialOveruseKWh, res.FinalOveruseKWh)
	}
}

// TestStrategyMixStillConverges checks heterogeneous bidding strategies
// against the monotonic concession protocol.
func TestStrategyMixStillConverges(t *testing.T) {
	s, err := PaperScenario()
	if err != nil {
		t.Fatal(err)
	}
	strategies := []customeragent.Strategy{
		customeragent.StrategyGreedy,
		customeragent.StrategyIncremental,
		customeragent.StrategyHoldout,
	}
	for i := range s.Customers {
		s.Customers[i].Strategy = strategies[i%len(strategies)]
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AgentErrors) != 0 {
		t.Fatalf("agent errors: %v", res.AgentErrors)
	}
	if res.Outcome == "" {
		t.Fatal("no outcome")
	}
	// The protocol invariant holds regardless of strategies.
	for i := 1; i < len(res.History); i++ {
		if !res.History[i].Table.DominatesOrEqual(res.History[i-1].Table) {
			t.Fatal("table monotonicity violated")
		}
	}
}

func TestBidsOfFillsGaps(t *testing.T) {
	history := []protocol.RoundRecord{
		{Round: 1, Bids: map[string]float64{"c": 0.2}},
		{Round: 2, Bids: map[string]float64{}},
		{Round: 3, Bids: map[string]float64{"c": 0.4}},
	}
	got := BidsOf(history, "c")
	want := []float64{0.2, 0.2, 0.4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BidsOf = %v, want %v", got, want)
		}
	}
}
