package health

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func newTestLogger(t *testing.T, cfg Config) *Logger {
	t.Helper()
	if cfg.StderrLevel == Debug {
		cfg.StderrLevel = Off // keep test output quiet unless asked
	}
	l, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func TestLevelGate(t *testing.T) {
	l := newTestLogger(t, Config{MinLevel: Warn})
	l.Log(Debug, "c", "dropped")
	l.Log(Info, "c", "dropped")
	l.Log(Warn, "c", "kept")
	l.Log(Error, "c", "kept")
	evs := l.Events(LogFilter{})
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2: %+v", len(evs), evs)
	}
	if l.Enabled(Info) || !l.Enabled(Warn) {
		t.Fatalf("Enabled gate wrong: info=%v warn=%v", l.Enabled(Info), l.Enabled(Warn))
	}
	l.SetLevel(Debug)
	if !l.Enabled(Debug) {
		t.Fatal("SetLevel(Debug) did not open the gate")
	}
	l.SetLevel(Off)
	l.Log(Error, "c", "gated off")
	if got := len(l.Events(LogFilter{})); got != 2 {
		t.Fatalf("Off level still recorded: %d events", got)
	}
}

func TestRingWrapAndDropCount(t *testing.T) {
	l := newTestLogger(t, Config{MinLevel: Debug, RingSize: 16})
	for i := 0; i < 40; i++ {
		l.Log(Info, "c", "m", Int("i", int64(i)))
	}
	evs := l.Events(LogFilter{})
	if len(evs) != 16 {
		t.Fatalf("ring holds %d, want 16", len(evs))
	}
	// Oldest-first: the ring must hold events 24..39 in order.
	for i, ev := range evs {
		if want := int64(24 + i); ev.Fields[0].Int != want {
			t.Fatalf("event %d has i=%d, want %d", i, ev.Fields[0].Int, want)
		}
	}
	total, dropped, perLevel := l.Stats()
	if total != 40 || dropped != 24 {
		t.Fatalf("total=%d dropped=%d, want 40/24", total, dropped)
	}
	if perLevel[Info] != 40 {
		t.Fatalf("perLevel[info]=%d, want 40", perLevel[Info])
	}
}

func TestEventsFilter(t *testing.T) {
	l := newTestLogger(t, Config{MinLevel: Debug})
	l.Log(Debug, "bus", "d")
	l.Log(Info, "bus", "i")
	l.Log(Warn, "replica", "w")
	if got := len(l.Events(LogFilter{MinLevel: Info})); got != 2 {
		t.Fatalf("MinLevel filter: got %d, want 2", got)
	}
	if got := len(l.Events(LogFilter{Component: "bus"})); got != 2 {
		t.Fatalf("Component filter: got %d, want 2", got)
	}
	evs := l.Events(LogFilter{Limit: 1})
	if len(evs) != 1 || evs[0].Msg != "w" {
		t.Fatalf("Limit filter: got %+v, want newest (w)", evs)
	}
}

func TestFileSinkWritesJSONL(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "grid.log")
	l := newTestLogger(t, Config{Proc: "test-proc", MinLevel: Debug, FilePath: path, StderrLevel: Off})
	l.Log(Info, "bus", "hello", Str("role", "primary"), Int("shard", 3))
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read sink: %v", err)
	}
	line := strings.TrimSpace(string(data))
	var doc map[string]any
	if err := json.Unmarshal([]byte(line), &doc); err != nil {
		t.Fatalf("sink line not JSON: %v\n%s", err, line)
	}
	for k, want := range map[string]any{
		"level": "info", "proc": "test-proc", "component": "bus",
		"msg": "hello", "role": "primary", "shard": float64(3),
	} {
		if doc[k] != want {
			t.Fatalf("sink field %q = %v, want %v (line %s)", k, doc[k], want, line)
		}
	}
}

func TestLogHandler(t *testing.T) {
	l := newTestLogger(t, Config{MinLevel: Debug})
	l.Log(Info, "bus", "a")
	l.Log(Warn, "replica", "b")

	get := func(q string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		LogHandler(l)(rec, httptest.NewRequest("GET", "/logs"+q, nil))
		return rec
	}

	rec := get("")
	if rec.Code != 200 {
		t.Fatalf("GET /logs: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var doc struct {
		Total   uint64           `json:"total"`
		Dropped uint64           `json:"dropped"`
		Events  []map[string]any `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if doc.Total != 2 || len(doc.Events) != 2 {
		t.Fatalf("total=%d events=%d, want 2/2", doc.Total, len(doc.Events))
	}

	if rec := get("?level=warn&component=replica&limit=5"); rec.Code != 200 {
		t.Fatalf("filtered GET: %d", rec.Code)
	} else {
		var d struct {
			Events []map[string]any `json:"events"`
		}
		_ = json.Unmarshal(rec.Body.Bytes(), &d)
		if len(d.Events) != 1 || d.Events[0]["msg"] != "b" {
			t.Fatalf("filtered events = %+v", d.Events)
		}
	}

	for _, q := range []string{"?level=bogus", "?limit=xyz", "?limit=0", "?limit=-3"} {
		if rec := get(q); rec.Code != 400 {
			t.Fatalf("GET /logs%s = %d, want 400", q, rec.Code)
		}
	}
}

func TestDefaultLoggerInstall(t *testing.T) {
	old := Default()
	defer def.Store(old)
	l, err := Init(Config{Proc: "install-test", MinLevel: Debug, StderrLevel: Off})
	if err != nil {
		t.Fatalf("Init: %v", err)
	}
	Log(Debug, "c", "via package")
	if got := len(l.Events(LogFilter{})); got != 1 {
		t.Fatalf("package-level Log missed installed logger: %d events", got)
	}
}

func TestWriteLogMetrics(t *testing.T) {
	l := newTestLogger(t, Config{MinLevel: Debug})
	l.Log(Warn, "c", "w")
	var sb strings.Builder
	WriteLogMetrics(&sb, l)
	out := sb.String()
	for _, want := range []string{
		`health_log_events_total{level="warn"} 1`,
		"health_log_ring_total 1",
		"health_log_ring_dropped_total 0",
		"# TYPE health_log_events_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}
