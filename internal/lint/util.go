package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// callee resolves the *types.Func a call expression invokes, or nil for
// calls through function values, built-ins and type conversions.
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel]
		}
	}
	f, _ := obj.(*types.Func)
	return f
}

// isPkgFunc reports whether f is the package-level function pkgPath.name
// (not a method).
func isPkgFunc(f *types.Func, pkgPath, name string) bool {
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == pkgPath &&
		f.Name() == name && f.Type().(*types.Signature).Recv() == nil
}

// isFloat reports whether t's core type is a floating-point scalar (named
// float wrappers like units.Energy count).
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// pathMatches reports whether pkgPath matches any suffix pattern: "a/b"
// matches "a/b" itself and anything ending in "/a/b". This keeps scope
// lists module-prefix-independent (and lets testdata fixtures opt in).
func pathMatches(pkgPath string, suffixes []string) bool {
	for _, s := range suffixes {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// mentions reports whether any identifier inside expr resolves to one of
// the given objects.
func mentions(info *types.Info, expr ast.Node, objs map[types.Object]bool) bool {
	if expr == nil || len(objs) == 0 {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return true
	})
	return found
}
