package cluster

import (
	"context"
	"fmt"
	"time"

	agentrt "loadbalance/internal/agent"
	"loadbalance/internal/bus"
	"loadbalance/internal/core"
	"loadbalance/internal/customeragent"
	"loadbalance/internal/message"
	"loadbalance/internal/trace"
	"loadbalance/internal/utilityagent"
)

// Distributed cluster mode: the concentrator tier runs behind real TCP
// connections instead of in-process buses, so each concentrator can live in
// its own OS process (cmd/gridd -role concentrator) or behind its own
// loopback connection pair. Two servers bridge the tiers: the root server
// carries the Utility Agent's announcements to the concentrators, the member
// server carries each concentrator's fan-out to its shard. Because the
// binary wire codec is content-preserving and the aggregation arithmetic is
// order-independent under full quorum, a seeded scenario negotiated this way
// produces byte-identical awards to the flat in-process run.

// DialTier starts one Concentrator per shard of the topology with every
// concentrator behind its own pair of TCP connections (bus.Dial under the
// hood): upward to rootAddr, downward to memberAddr. The returned remotes
// own the connections; Tier.Stop closes them via the runtimes.
func DialTier(rootAddr, memberAddr string, topo Topology, cfg TierConfig) (*Tier, *bus.Remote, *bus.Remote, error) {
	return DialTierList([]string{rootAddr}, []string{memberAddr}, topo, cfg)
}

// DialTierList is DialTier over dial lists: each tier names its primary
// address first and failover addresses after it, so a worker tier started
// against a replicated grid head finds whichever replica is serving. Every
// Register tries the lists in order.
func DialTierList(rootAddrs, memberAddrs []string, topo Topology, cfg TierConfig) (*Tier, *bus.Remote, *bus.Remote, error) {
	up := bus.NewRemoteList(rootAddrs, bus.ClientConfig{})
	down := bus.NewRemoteList(memberAddrs, bus.ClientConfig{})
	tier, err := StartTier(up, func(int) bus.Bus { return down }, topo, cfg)
	if err != nil {
		up.Close()
		down.Close()
		return nil, nil, nil, err
	}
	return tier, up, down, nil
}

// WorkerConfig parameterises one concentrator worker (typically its own OS
// process).
type WorkerConfig struct {
	// UpAddr is the root tier's TCP server (the Utility Agent's side). It
	// may be a comma-separated dial list; addresses are tried in order.
	UpAddr string
	// DownAddr is the member tier's TCP server (the customers' side). It
	// may be a comma-separated dial list.
	DownAddr string
	// Concentrator is the shard configuration.
	Concentrator ConcentratorConfig
	// InboxSize sizes both connection inboxes (0 picks a size from the
	// shard's member count).
	InboxSize int
}

// RunWorker hosts one concentrator behind dialed connections until the
// session end has been relayed to the shard, then tears down. A cancelled
// context abandons the session early.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.UpAddr == "" || cfg.DownAddr == "" {
		return fmt.Errorf("%w: worker needs -up and -down addresses", ErrBadConfig)
	}
	cc, err := NewConcentrator(cfg.Concentrator)
	if err != nil {
		return err
	}
	inbox := cfg.InboxSize
	if inbox <= 0 {
		inbox = 4 * max(len(cfg.Concentrator.Members), 16)
	}
	up := bus.NewRemoteList(bus.SplitAddrList(cfg.UpAddr), bus.ClientConfig{})
	down := bus.NewRemoteList(bus.SplitAddrList(cfg.DownAddr), bus.ClientConfig{})
	defer up.Close()
	defer down.Close()
	if err := cc.Start(up, down, inbox); err != nil {
		return err
	}
	defer cc.Stop()

	upDead := make(chan struct{})
	go func() {
		cc.WaitUp()
		close(upDead)
	}()

	tick := time.NewTicker(5 * time.Millisecond) //gridlint:allow walltime(worker-liveness poll ticker; gates startup, not negotiation values)
	defer tick.Stop()
	for !cc.Done() {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-upDead:
			// The root connection died. Everything it delivered has been
			// handled by now, so a pending session end has already landed.
			if !cc.Done() {
				return fmt.Errorf("cluster: worker %q lost the root connection before session end", cfg.Concentrator.Name)
			}
		case <-tick.C:
		}
	}
	// The session end is relayed; awards were written synchronously before
	// it, so the shard has everything. Give the server-side writers a beat
	// to flush anything still queued toward us, then unwind.
	time.Sleep(50 * time.Millisecond)
	for _, err := range cc.Errors() {
		return fmt.Errorf("cluster: worker %q: %w", cfg.Concentrator.Name, err)
	}
	return nil
}

// DistributedConfig parameterises a negotiation with the concentrator tier
// behind TCP.
type DistributedConfig struct {
	// Scenario is the flat scenario to negotiate (reward-table method only,
	// like Config). DropRate must be zero: loss injection is seeded per
	// shard bus, which a shared TCP bridge cannot reproduce.
	Scenario core.Scenario
	// Shards is the number of concentrator connections (default 4).
	Shards int
	// ShardRoundTimeout mirrors Config.ShardRoundTimeout.
	ShardRoundTimeout time.Duration
	// TraceParent mirrors Config.TraceParent.
	TraceParent trace.Context
}

// DistributedResult extends Result with the transport's view of the run.
type DistributedResult struct {
	Result
	// MemberAwards is each responding customer's award exactly as delivered
	// over the tree — the byte-equivalence surface against a flat run.
	MemberAwards map[string]message.Award
	// RootWire and MemberWire are the two TCP servers' frame counters.
	RootWire, MemberWire bus.WireStats
}

// RunDistributed executes a scenario through a 2-level concentrator tree
// whose tiers are joined by TCP: root bus ⇄ root server ⇄ K concentrator
// connections ⇄ member server ⇄ member bus carrying the customers.
func RunDistributed(cfg DistributedConfig) (*DistributedResult, error) {
	s := cfg.Scenario
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Method != utilityagent.MethodRewardTable {
		return nil, fmt.Errorf("%w: distributed negotiation requires the reward-table method, got %v", ErrBadConfig, s.Method)
	}
	if s.DropRate != 0 {
		return nil, fmt.Errorf("%w: distributed negotiation is lossless (DropRate %v)", ErrBadConfig, s.DropRate)
	}
	if cfg.Shards == 0 {
		cfg.Shards = 4
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("%w: shard count %d", ErrBadConfig, cfg.Shards)
	}
	if cfg.ShardRoundTimeout <= 0 {
		cfg.ShardRoundTimeout = s.RoundTimeout / 2
	}
	timeout := s.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}

	topo, err := NewTopology(s.Loads(), cfg.Shards)
	if err != nil {
		return nil, err
	}
	specs := make(map[string]core.CustomerSpec, len(s.Customers))
	for _, spec := range s.Customers {
		specs[spec.Name] = spec
	}

	memberBus, err := bus.NewInProc(bus.Config{})
	if err != nil {
		return nil, err
	}
	defer memberBus.Close()
	memberSrv, err := bus.ListenAndServe("127.0.0.1:0", memberBus)
	if err != nil {
		return nil, err
	}
	defer memberSrv.Close()

	rootBus, err := bus.NewInProc(bus.Config{})
	if err != nil {
		return nil, err
	}
	defer rootBus.Close()
	rootSrv, err := bus.ListenAndServe("127.0.0.1:0", rootBus)
	if err != nil {
		return nil, err
	}
	defer rootSrv.Close()

	start := time.Now() //gridlint:allow walltime(wall-duration measurement for Result.Elapsed; never feeds negotiated state)

	var runtimes []*agentrt.Runtime
	var tier *Tier
	defer func() {
		if tier != nil {
			tier.Stop()
		}
		for _, rt := range runtimes {
			rt.Stop()
		}
	}()

	maxShardSize := 0
	cas := make(map[string]*customeragent.Agent, len(s.Customers))
	for i := 0; i < topo.Shards(); i++ {
		members := topo.Members(i)
		if len(members) > maxShardSize {
			maxShardSize = len(members)
		}
		for _, name := range members {
			spec := specs[name]
			var handler agentrt.Handler
			if spec.Silent {
				handler = agentrt.HandlerFuncs{}
			} else {
				ca, err := customeragent.New(spec.Name, spec.Prefs, spec.Strategy)
				if err != nil {
					return nil, fmt.Errorf("cluster: customer %q: %w", spec.Name, err)
				}
				cas[spec.Name] = ca
				handler = ca
			}
			rt, err := agentrt.Start(spec.Name, memberBus, handler, 64)
			if err != nil {
				return nil, fmt.Errorf("cluster: start %q: %w", spec.Name, err)
			}
			runtimes = append(runtimes, rt)
		}
	}

	tier, _, _, err = DialTier(rootSrv.Addr(), memberSrv.Addr(), topo, TierConfig{
		SessionID:         s.SessionID,
		FleetMinResponses: s.Params.MinResponses,
		RoundTimeout:      cfg.ShardRoundTimeout,
		InboxSize:         4 * max(maxShardSize, 16),
	})
	if err != nil {
		return nil, err
	}

	ua, err := utilityagent.New(utilityagent.Config{
		Name:         "ua",
		SessionID:    s.SessionID,
		Window:       s.Window,
		NormalUse:    s.NormalUse,
		Loads:        topo.AggregateLoads(),
		Method:       utilityagent.MethodRewardTable,
		Params:       RootParams(s.Params),
		LeadTime:     s.LeadTime,
		InitialSlope: s.InitialSlope,
		RoundTimeout: s.RoundTimeout,
		WarrantRatio: s.Params.AllowedOveruseRatio,
		TraceParent:  cfg.TraceParent,
	})
	if err != nil {
		return nil, err
	}
	uaRT, err := agentrt.Start("ua", rootBus, ua, 4*max(topo.Shards(), 16))
	if err != nil {
		return nil, err
	}
	runtimes = append(runtimes, uaRT)

	var uaResult utilityagent.Result
	select {
	case uaResult = <-ua.Done():
	case <-time.After(timeout): //gridlint:allow walltime(liveness timeout for a stalled distributed fleet; fires only when the run already failed)
		return nil, fmt.Errorf("%w after %v", ErrTimeout, timeout)
	}

	// Awards and the session end cross two TCP hops before reaching the
	// customers; drain until every in-process member saw them (bounded, like
	// the in-proc engine's drain).
	if len(uaResult.History) > 0 {
		drainDeadline := time.Now().Add(2 * time.Second) //gridlint:allow walltime(bounded award-drain deadline; liveness only, awards are already decided)
		for time.Now().Before(drainDeadline) {           //gridlint:allow walltime(bounded award-drain deadline; liveness only, awards are already decided)
			if allRelayed(tier.Concentrators) && allAwarded(tier.Concentrators, cas, s.SessionID) {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}

	res := &DistributedResult{
		Result: Result{
			Result:    uaResult,
			Shards:    topo.Shards(),
			ParentBus: rootBus.Stats(),
			FinalBids: make(map[string]float64, len(cas)),
			Elapsed:   time.Since(start), //gridlint:allow walltime(wall-duration measurement for Result.Elapsed; never feeds negotiated state)
		},
		MemberAwards: make(map[string]message.Award, len(cas)),
	}
	res.ShardBuses = []bus.Stats{memberBus.Stats()}
	for name, ca := range cas {
		res.FinalBids[name] = ca.LastBid(s.SessionID)
		if award, ok := ca.AwardFor(s.SessionID); ok {
			res.MemberAwards[name] = award
		}
	}
	for _, rt := range runtimes {
		res.AgentErrors = append(res.AgentErrors, rt.Errors()...)
	}
	res.AgentErrors = append(res.AgentErrors, tier.Errors()...)
	res.RootWire = rootSrv.WireStats()
	res.MemberWire = memberSrv.WireStats()
	return res, nil
}
