package message

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
)

// legacyUnmarshalBinary is the original five-field decoder, kept verbatim
// so the tests below prove the compatibility claims against real v2
// behaviour instead of a re-derivation.
func legacyUnmarshalBinary(data []byte) (Envelope, error) {
	var e Envelope
	var err error
	if e.From, data, err = readVarintString(data); err != nil {
		return Envelope{}, err
	}
	if e.To, data, err = readVarintString(data); err != nil {
		return Envelope{}, err
	}
	if e.Session, data, err = readVarintString(data); err != nil {
		return Envelope{}, err
	}
	var kind string
	if kind, data, err = readVarintString(data); err != nil {
		return Envelope{}, err
	}
	e.Kind = Kind(kind)
	var body string
	if body, data, err = readVarintString(data); err != nil {
		return Envelope{}, err
	}
	if len(body) > 0 {
		e.Body = []byte(body)
	}
	if len(data) != 0 {
		return Envelope{}, errors.New("trailing bytes")
	}
	return e, nil
}

func TestBinaryTraceRoundTrip(t *testing.T) {
	e := binEnv(t, CutDownBid{Round: 2, CutDown: 0.2})
	e.TraceID = 0xdeadbeefcafe0001
	e.SpanID = 0x1122334455667788

	data, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != e.BinarySize() {
		t.Fatalf("encoded %d bytes, BinarySize says %d", len(data), e.BinarySize())
	}
	got, err := UnmarshalBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceID != e.TraceID || got.SpanID != e.SpanID {
		t.Fatalf("trace context lost: got %x/%x", got.TraceID, got.SpanID)
	}
	if got.From != e.From || got.Session != e.Session || !bytes.Equal(got.Body, e.Body) {
		t.Fatal("envelope fields corrupted by trace field")
	}
}

func TestBinaryUntracedEnvelopeIsByteIdenticalToLegacy(t *testing.T) {
	// An envelope without trace context must encode exactly as the
	// five-field v2 layout — the legacy decoder accepts it bit-for-bit.
	e := binEnv(t, Award{Round: 3, CutDown: 0.2, Reward: 8.5})
	data, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := legacyUnmarshalBinary(data)
	if err != nil {
		t.Fatalf("legacy decoder rejected untraced envelope: %v", err)
	}
	if got.From != e.From || got.Kind != e.Kind || !bytes.Equal(got.Body, e.Body) {
		t.Fatal("legacy decode mismatch")
	}
}

func TestBinaryNewDecoderAcceptsLegacyEncoding(t *testing.T) {
	// Frames produced by old peers (five fields) must decode with a zero
	// trace context.
	e := binEnv(t, SessionEnd{Round: 1, Reason: "done"})
	data, err := e.MarshalBinary() // untraced ⇒ legacy layout
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Traced() || got.SpanID != 0 {
		t.Fatalf("legacy frame decoded with trace context %x/%x", got.TraceID, got.SpanID)
	}
}

func TestBinaryTracedFrameDegradesCleanlyOnLegacyPeer(t *testing.T) {
	// An old peer sees a traced frame as malformed and drops it — the
	// documented (and counted) degradation, never a crash or a corrupted
	// envelope.
	e := binEnv(t, CutDownBid{Round: 1, CutDown: 0.1})
	e.TraceID, e.SpanID = 7, 9
	data, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := legacyUnmarshalBinary(data); err == nil {
		t.Fatal("legacy decoder silently accepted a traced frame")
	}
}

func TestBinaryTraceFieldTruncation(t *testing.T) {
	e := binEnv(t, CutDownBid{Round: 1, CutDown: 0.1})
	e.TraceID, e.SpanID = 42, 43
	data, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// A cut exactly at the five-field boundary is a valid legacy frame;
	// any cut inside the trace field must error, not decode a half id.
	if _, err := UnmarshalBinary(data[:len(data)-traceFieldLen-1]); err != nil {
		t.Fatalf("five-field boundary cut should decode as legacy: %v", err)
	}
	for cut := len(data) - traceFieldLen; cut < len(data); cut++ {
		if _, err := UnmarshalBinary(data[:cut]); err == nil {
			t.Fatalf("cut at %d silently accepted", cut)
		}
	}
	// A six-field frame with a wrong-size trace field is malformed.
	bad := e
	bad.TraceID, bad.SpanID = 0, 0
	raw, _ := bad.MarshalBinary()
	raw = append(raw, 3, 1, 2, 3) // 3-byte sixth field
	if _, err := UnmarshalBinary(raw); err == nil {
		t.Fatal("wrong-size trace field accepted")
	}
}

func TestJSONTraceFieldsOmittedWhenUntraced(t *testing.T) {
	e := binEnv(t, SessionEnd{Round: 1, Reason: "done"})
	raw, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte("traceId")) || bytes.Contains(raw, []byte("spanId")) {
		t.Fatalf("untraced JSON envelope leaks trace fields: %s", raw)
	}

	e.TraceID, e.SpanID = 11, 12
	raw, err = json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var got Envelope
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.TraceID != 11 || got.SpanID != 12 {
		t.Fatalf("JSON trace round trip lost context: %+v", got)
	}
}
