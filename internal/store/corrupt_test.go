package store

// Corruption-handling tests: whatever the directory holds, recovery returns
// the longest valid prefix of the log and never panics.

import (
	"os"
	"path/filepath"
	"testing"
)

// writeTicks opens a store, appends n tick records and closes it.
func writeTicks(t *testing.T, dir string, n int, opts Options) {
	t.Helper()
	st, _, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := st.Append(NewTickRecord(sampleTick(i, 2))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// lastSegment returns the newest segment path.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs := segmentGlob(dir)
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	return segs[len(segs)-1]
}

func TestRecoverTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	writeTicks(t, dir, 10, Options{})
	// Chop bytes off the tail: the torn record drops, the rest survive.
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	st, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if len(rec.Records) != 9 {
		t.Fatalf("recovered %d records, want 9 (tail torn)", len(rec.Records))
	}
	if rec.TornBytes == 0 {
		t.Fatal("torn bytes not reported")
	}
	if cp, _ := DecodeTick(rec.Records[8]); cp.Tick != 8 {
		t.Fatalf("last surviving record tick = %d, want 8", cp.Tick)
	}
	// Repair must have cut the garbage so a fresh append and another
	// recovery see a clean, contiguous log.
	if err := st.Append(NewTickRecord(sampleTick(9, 2))); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	rec2, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.Records) != 10 || rec2.TornBytes != 0 {
		t.Fatalf("after repair: %d records, %d torn bytes; want 10 and 0", len(rec2.Records), rec2.TornBytes)
	}
}

func TestRecoverBadCRC(t *testing.T) {
	dir := t.TempDir()
	writeTicks(t, dir, 10, Options{})
	// Flip a byte in the middle of the segment: the log ends at the last
	// record before the damage.
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) == 0 || len(rec.Records) >= 10 {
		t.Fatalf("recovered %d records, want a proper prefix", len(rec.Records))
	}
	for i, r := range rec.Records {
		cp, err := DecodeTick(r)
		if err != nil || cp.Tick != i {
			t.Fatalf("surviving record %d: tick %d, err %v", i, cp.Tick, err)
		}
	}
}

func TestRecoverMixedVersionSegments(t *testing.T) {
	dir := t.TempDir()
	writeTicks(t, dir, 5, Options{})
	// Hand-craft a future-versioned segment after the valid one: recovery
	// must stop at the last valid record of the v1 log, and Open must set
	// the alien segment aside rather than replay or clobber it.
	alien := filepath.Join(dir, segmentName(6))
	if err := os.WriteFile(alien, append([]byte(segMagic), 99, 0xde, 0xad), 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 5 || rec.LastSeq != 5 {
		t.Fatalf("recovered %d records to seq %d, want the 5 v1 records", len(rec.Records), rec.LastSeq)
	}

	st, rec2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.Records) != 5 {
		t.Fatalf("open recovered %d records, want 5", len(rec2.Records))
	}
	if err := st.Append(NewTickRecord(sampleTick(5, 2))); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(alien + ".orphaned"); err != nil {
		t.Fatalf("alien segment not set aside: %v", err)
	}
	rec3, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec3.Records) != 6 {
		t.Fatalf("log after orphaning = %d records, want 6", len(rec3.Records))
	}
}

func TestRecoverSegmentHole(t *testing.T) {
	dir := t.TempDir()
	// Three small segments; delete the middle one: the log must end at the
	// first segment's last record, and the orphan must be set aside.
	writeTicks(t, dir, 150, Options{SegmentBytes: 1024})
	segs := segmentGlob(dir)
	if len(segs) < 3 {
		t.Fatalf("want ≥3 segments, got %d", len(segs))
	}
	if err := os.Remove(segs[1]); err != nil {
		t.Fatal(err)
	}
	first, _ := segmentFirstSeq(segs[1])

	rec, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.LastSeq != first-1 {
		t.Fatalf("log ends at seq %d, want %d (just before the hole)", rec.LastSeq, first-1)
	}
	st, _, err := Open(dir, Options{SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	for _, s := range segs[2:] {
		if _, err := os.Stat(s + ".orphaned"); err != nil {
			t.Fatalf("segment beyond the hole not set aside: %v", err)
		}
	}
}

func TestRecoverGarbageFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	writeTicks(t, dir, 3, Options{})
	// Stray files that match neither naming scheme are ignored outright.
	for _, name := range []string{"notes.txt", "wal-zzzz.seg.bak", "snap-xyz.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("noise"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	rec, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 3 {
		t.Fatalf("recovered %d records with stray files present, want 3", len(rec.Records))
	}
}

func TestRecoverEmptyAndHeaderOnlySegments(t *testing.T) {
	dir := t.TempDir()
	// A header-only segment (crash right after rotation) recovers to an
	// empty log without error.
	st, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Empty() || rec.Sealed {
		t.Fatalf("header-only dir recovered %+v", rec)
	}
	// A zero-byte segment likewise never panics.
	if err := os.WriteFile(filepath.Join(dir, segmentName(1)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if rec, err = ReadDir(dir); err != nil {
		t.Fatal(err)
	}
	if !rec.Empty() {
		t.Fatalf("zero-byte segment recovered %+v", rec)
	}
}

func TestDecodeTickRejectsOverflowedShardCount(t *testing.T) {
	// A crafted body declaring 2^61 shards (8×count wraps to 0) with an
	// empty vector must be rejected, not panic recovery's allocator.
	body := AppendTickBody(nil, TickCheckpoint{Tick: 1, Readings: 1, Batches: 1})
	body = body[:len(body)-1]                                                 // drop the honest zero shard count
	body = append(body, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x20) // uvarint 1<<61
	if _, err := DecodeTickBody(body); err == nil {
		t.Fatal("overflowed shard count decoded without error")
	}
}
