package customeragent

import (
	"fmt"
	"math"

	"loadbalance/internal/desire"
	"loadbalance/internal/kb"
	"loadbalance/internal/message"
)

// Strategy selects among acceptable cut-downs. The paper's prototype
// customer always "chooses the highest acceptable cut-down as its preferred
// cut-down" (Section 6.2) — StrategyGreedy. The other strategies implement
// the bidding-strategy variation the paper's own process model allows
// ("evaluation of the bid in the light of the Customer Agent's bidding
// strategy", Section 5.2.2).
type Strategy int

// Strategies.
const (
	// StrategyGreedy bids the highest acceptable cut-down immediately.
	StrategyGreedy Strategy = iota + 1
	// StrategyIncremental concedes one level per round ("one step forward"),
	// and only when that level is acceptable.
	StrategyIncremental
	// StrategyHoldout bids only when the offered reward exceeds the
	// requirement by the holdout factor, then bids greedily; it models
	// customers that wait for the UA to raise rewards.
	StrategyHoldout
)

// String renders the strategy name.
func (s Strategy) String() string {
	switch s {
	case StrategyGreedy:
		return "greedy"
	case StrategyIncremental:
		return "incremental"
	case StrategyHoldout:
		return "holdout"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// holdoutFactor is the reward premium a holdout customer waits for.
const holdoutFactor = 1.15

// decider is the CA's DESIRE decision kernel: a reasoning component holding
// the acceptability knowledge base. Its stores persist across rounds; since
// the monotonic concession protocol only ever raises rewards, stale
// announcement facts from earlier rounds can only mark levels acceptable
// that are acceptable under the newest table too, so accumulation is sound.
type decider struct {
	comp *desire.Composed
}

// Predicates of the CA decision ontology.
const (
	predRequired   = "required_reward"
	predAnnounced  = "announced_reward"
	predAcceptable = "acceptable_cutdown"
)

// newDecider builds the decision composition for one customer.
func newDecider(prefs Preferences) (*decider, error) {
	ont := kb.NewOntology()
	steps := []error{
		ont.DeclarePred(predRequired, kb.SortNumber, kb.SortNumber),
		ont.DeclarePred(predAnnounced, kb.SortNumber, kb.SortNumber),
		ont.DeclarePred(predAcceptable, kb.SortNumber),
	}
	for _, err := range steps {
		if err != nil {
			return nil, fmt.Errorf("customeragent: ontology: %w", err)
		}
	}
	base, err := kb.NewBase("acceptability", kb.Rule{
		Name: "acceptable_if_offer_clears_requirement",
		If: []kb.Literal{
			kb.Pos(kb.A(predRequired, kb.V("Cut"), kb.V("Req"))),
			kb.Pos(kb.A(predAnnounced, kb.V("Cut"), kb.V("Off"))),
		},
		Guards: []kb.Guard{{Op: kb.OpGeq, Left: kb.V("Off"), Right: kb.V("Req")}},
		Then:   []kb.Atom{kb.A(predAcceptable, kb.V("Cut"))},
	})
	if err != nil {
		return nil, err
	}

	comp := desire.NewComposed("determine_bid", ont, 0)
	reason := desire.NewReasoning("determine_acceptability", ont, base, predAcceptable)
	if err := comp.AddChild(reason); err != nil {
		return nil, err
	}
	links := []desire.Link{
		{
			Name: "announcement_in",
			From: desire.Endpoint{Port: desire.In},
			To:   desire.Endpoint{Component: "determine_acceptability", Port: desire.In},
		},
		{
			Name: "acceptability_out",
			From: desire.Endpoint{Component: "determine_acceptability", Port: desire.Out},
			To:   desire.Endpoint{Port: desire.Out},
		},
	}
	for _, l := range links {
		if err := comp.AddLink(l); err != nil {
			return nil, err
		}
	}
	if err := comp.SetControl([]desire.Step{
		{Transfer: "announcement_in"},
		{Activate: "determine_acceptability"},
		{Transfer: "acceptability_out"},
	}); err != nil {
		return nil, err
	}

	// Seed the customer's private requirements (finite levels only; an
	// infeasible level simply has no required_reward fact and can never
	// become acceptable).
	for _, l := range prefs.Levels {
		r := prefs.RequiredFor(l)
		if math.IsInf(r, 1) {
			continue
		}
		fact := kb.A(predRequired, kb.N(l), kb.N(r))
		if err := comp.Input().Assert(fact, kb.True); err != nil {
			return nil, err
		}
	}
	return &decider{comp: comp}, nil
}

// acceptableLevels feeds an announced table into the composition and returns
// the acceptable cut-down levels, ascending.
func (d *decider) acceptableLevels(table message.RewardTable) ([]float64, error) {
	for _, e := range table.Entries {
		fact := kb.A(predAnnounced, kb.N(e.CutDown), kb.N(e.Reward))
		if err := d.comp.Input().Assert(fact, kb.True); err != nil {
			return nil, err
		}
	}
	if _, err := d.comp.Activate(); err != nil {
		return nil, err
	}
	var out []float64
	for _, f := range d.comp.Output().Facts() {
		if f.Atom.Pred == predAcceptable && f.Truth == kb.True {
			out = append(out, f.Atom.Args[0].Num)
		}
	}
	sortFloats(out)
	return out, nil
}

// sortFloats sorts ascending without pulling in sort for a 10-element slice
// in the hot path.
func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// DecideCutDown picks this round's bid given the announced table, the
// previous bid (monotonic floor) and the strategy.
func (d *decider) DecideCutDown(prefs Preferences, strat Strategy, table message.RewardTable, lastBid float64) (float64, error) {
	acceptable, err := d.acceptableLevels(table)
	if err != nil {
		return 0, err
	}
	best := lastBid // never regress (monotonic concession)
	switch strat {
	case StrategyGreedy:
		for _, l := range acceptable {
			if l > best {
				best = l
			}
		}
	case StrategyIncremental:
		// Concede exactly one grid step beyond the previous bid, when
		// acceptable.
		next := nextLevel(prefs.Levels, lastBid)
		for _, l := range acceptable {
			if l == next && l > best {
				best = l
			}
		}
	case StrategyHoldout:
		for _, l := range acceptable {
			off, ok := table.RewardFor(l)
			if !ok {
				continue
			}
			req := prefs.RequiredFor(l)
			if req == 0 || off >= holdoutFactor*req {
				if l > best {
					best = l
				}
			}
		}
	default:
		return 0, fmt.Errorf("%w: %d", ErrBadStrategy, int(strat))
	}
	return best, nil
}

// nextLevel returns the smallest grid level strictly above cur (or cur when
// already at the top).
func nextLevel(levels []float64, cur float64) float64 {
	for _, l := range levels {
		if l > cur {
			return l
		}
	}
	return cur
}

// DecideOffer evaluates a take-it-or-leave-it offer: the CA compares the
// electricity bill if it declines (normal price for everything) against the
// bill plus comfort cost if it accepts (low price up to the cap, and the
// cheaper of high-priced excess or shedding the excess).
func DecideOffer(prefs Preferences, terms message.OfferTerms) bool {
	use := prefs.ExpectedUse.KWhs()
	if use <= 0 {
		return true // nothing at stake; the discount can only help
	}
	cap := terms.AllowanceKWh * terms.XMax
	declineCost := terms.NormalPrice * use
	within := use
	if within > cap {
		within = cap
	}
	acceptCost := terms.LowPrice * within
	if excess := use - cap; excess > 0 {
		payThrough := terms.HighPrice * excess
		shed := prefs.ShedCost(unitsEnergy(excess))
		if shed < payThrough {
			acceptCost += shed
		} else {
			acceptCost += payThrough
		}
	}
	return acceptCost < declineCost
}

// DecideEnergyBid computes this round's yMin for the request-for-bids
// method: shed load stepwise (one grid level per round) while the avoided
// peak-price premium exceeds the comfort cost of the step.
func DecideEnergyBid(prefs Preferences, req message.BidRequest, committedYMin float64) float64 {
	use := prefs.ExpectedUse.KWhs()
	if use <= 0 {
		return committedYMin
	}
	floor := use * (1 - prefs.MaxCutDown)
	step := use * gridStep(prefs.Levels)
	proposed := committedYMin - step
	if proposed < floor {
		proposed = floor
	}
	if proposed >= committedYMin {
		return committedYMin // stand still
	}
	// Step forward only when the premium saved beats the comfort cost.
	saved := (req.HighPrice - req.LowPrice) * (committedYMin - proposed)
	cost := prefs.ShedCost(unitsEnergy(committedYMin - proposed))
	if math.IsInf(cost, 1) || cost >= saved {
		return committedYMin
	}
	return proposed
}

// gridStep returns the spacing of the preference grid (assumed uniform; the
// first non-zero level).
func gridStep(levels []float64) float64 {
	for _, l := range levels {
		if l > 0 {
			return l
		}
	}
	return 0.1
}
