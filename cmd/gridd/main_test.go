package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"loadbalance/internal/store"
	"loadbalance/internal/trace"
)

// TestMain doubles as the worker-process entry point: spawned copies of the
// test binary with GRIDD_HELPER=1 run gridd's real main path instead of the
// test suite, which is how the multi-process tests exercise true os/exec
// concentrator workers without building the binary first.
func TestMain(m *testing.M) {
	if os.Getenv("GRIDD_HELPER") == "1" {
		if err := run(context.Background(), os.Args[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "gridd helper:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func TestRunFlagValidation(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string
	}{
		{name: "no mode", args: nil, want: "-serve ADDR or -connect ADDR"},
		{name: "both modes", args: []string{"-serve", ":1", "-connect", "x:1"}, want: "mutually exclusive"},
		{name: "connect without name", args: []string{"-connect", "x:1"}, want: "requires -name"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := run(context.Background(), tt.args)
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error = %v, want %q", err, tt.want)
			}
		})
	}
}

func TestClientPreferencesDeterministic(t *testing.T) {
	p1, err := clientPreferences(3)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := clientPreferences(3)
	if err != nil {
		t.Fatal(err)
	}
	if p1.RequiredFor(0.4) != p2.RequiredFor(0.4) {
		t.Fatal("same seed must give identical preferences")
	}
	p3, err := clientPreferences(4)
	if err != nil {
		t.Fatal(err)
	}
	if p1.RequiredFor(0.4) == p3.RequiredFor(0.4) {
		t.Fatal("different seeds should scale the table differently")
	}
	if p1.ExpectedUse != 13.5 {
		t.Fatalf("expected use = %v", p1.ExpectedUse)
	}
}

func TestWindowNow(t *testing.T) {
	iv := windowNow()
	if iv.Duration() != 2*time.Hour {
		t.Fatalf("duration = %v", iv.Duration())
	}
	if !iv.Start.After(time.Now()) {
		t.Fatal("window should start in the future")
	}
}

// TestServerClientEndToEnd runs the daemon and three customer processes'
// worth of clients inside one test over real TCP.
func TestServerClientEndToEnd(t *testing.T) {
	ctx := context.Background()
	ready := make(chan serveAddrs, 1)
	serverErr := make(chan error, 1)
	go func() {
		serverErr <- serve(ctx, serveConfig{addr: "127.0.0.1:0", customers: 3, shards: 1, timeout: 30 * time.Second}, ready)
	}()
	var addr string
	select {
	case a := <-ready:
		addr = a.member
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}

	var wg sync.WaitGroup
	clientErrs := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			clientErrs[i] = runClient(ctx, addr, []string{"c01", "c02", "c03"}[i], int64(i+1))
		}(i)
	}
	wg.Wait()
	for i, err := range clientErrs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	select {
	case err := <-serverErr:
		if err != nil {
			t.Fatalf("server: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server never finished")
	}
}

// TestShardedServerEndToEnd runs the daemon with -shards 2 and four TCP
// clients: the fleet negotiates through concentrators and every client must
// still see its session end.
func TestShardedServerEndToEnd(t *testing.T) {
	ctx := context.Background()
	ready := make(chan serveAddrs, 1)
	serverErr := make(chan error, 1)
	go func() {
		serverErr <- serve(ctx, serveConfig{addr: "127.0.0.1:0", customers: 4, shards: 2, timeout: 30 * time.Second}, ready)
	}()
	var addr string
	select {
	case a := <-ready:
		addr = a.member
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}

	names := []string{"c01", "c02", "c03", "c04"}
	var wg sync.WaitGroup
	clientErrs := make([]error, len(names))
	for i := range names {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			clientErrs[i] = runClient(ctx, addr, names[i], int64(i+1))
		}(i)
	}
	wg.Wait()
	for i, err := range clientErrs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	select {
	case err := <-serverErr:
		if err != nil {
			t.Fatalf("server: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server never finished")
	}
}

// TestDistributedServerEndToEnd is the full multi-process deployment: the
// daemon hosts the member and root tiers, four concentrator workers run as
// separate OS processes (exec'd copies of this binary), and eight customers
// dial in over TCP. Every client must see its session end, every worker must
// exit cleanly, and the /metrics endpoint must account for the four worker
// handshakes on the root tier.
func TestDistributedServerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	const (
		customers = 8
		shards    = 4
	)
	ctx := context.Background()
	ready := make(chan serveAddrs, 1)
	serverErr := make(chan error, 1)
	go func() {
		serverErr <- serve(ctx, serveConfig{
			addr:        "127.0.0.1:0",
			rootAddr:    "127.0.0.1:0",
			metricsAddr: "127.0.0.1:0",
			customers:   customers,
			shards:      shards,
			timeout:     60 * time.Second,
		}, ready)
	}()
	var addrs serveAddrs
	select {
	case addrs = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}

	// Concentrator workers: separate OS processes.
	workers := make([]*exec.Cmd, shards)
	for i := range workers {
		cmd := exec.Command(os.Args[0],
			"-role", "concentrator",
			"-up", addrs.root,
			"-down", addrs.member,
			"-shard", strconv.Itoa(i),
			"-shards", strconv.Itoa(shards),
			"-customers", strconv.Itoa(customers),
		)
		cmd.Env = append(os.Environ(), "GRIDD_HELPER=1")
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		workers[i] = cmd
	}
	defer func() {
		for _, w := range workers {
			if w.Process != nil {
				_ = w.Process.Kill()
			}
		}
	}()

	// The workers dial the root tier immediately; /metrics must account for
	// all four handshakes while the daemon is still waiting for customers.
	scrape := func() string {
		resp, err := http.Get("http://" + addrs.metrics + "/metrics")
		if err != nil {
			return ""
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	metricsDeadline := time.Now().Add(10 * time.Second)
	var metrics string
	for {
		metrics = scrape()
		if strings.Contains(metrics, `bus_wire_hellos_total{transport="root"} 4`) {
			break
		}
		if time.Now().After(metricsDeadline) {
			t.Fatalf("root tier never saw 4 worker handshakes:\n%s", metrics)
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, want := range []string{
		`bus_wire_hellos_total{transport="member"}`,
		`bus_wire_rejected_total{transport="root"} 0`,
		`bus_wire_frames_out_total{transport="member"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// Customers: in-process clients over real TCP.
	var wg sync.WaitGroup
	clientErrs := make([]error, customers)
	for i := 0; i < customers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			clientErrs[i] = runClient(ctx, addrs.member, fmt.Sprintf("c%02d", i+1), int64(i+1))
		}(i)
	}
	wg.Wait()
	for i, err := range clientErrs {
		if err != nil {
			t.Errorf("client %d: %v", i, err)
		}
	}
	select {
	case err := <-serverErr:
		if err != nil {
			t.Fatalf("server: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server never finished")
	}
	for i, w := range workers {
		done := make(chan error, 1)
		go func(w *exec.Cmd) { done <- w.Wait() }(w)
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("worker %d exited: %v", i, err)
			}
		case <-time.After(15 * time.Second):
			_ = w.Process.Kill()
			t.Errorf("worker %d never exited", i)
		}
	}
}

// TestDistributedTraceStitch is the observability acceptance run: the full
// distributed deployment — root tier, four concentrator worker processes,
// eight TCP customers and a hot standby replicating the journal — with
// tracing on everywhere. The workers export their rings via -trace-dump, the
// daemon serves its ring on /trace, and the merged spans must stitch into
// one tree per negotiation session: exactly one root, every parent id
// resolving within the trace, across all processes.
func TestDistributedTraceStitch(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	tr := trace.Enable("gridd-test", 16384)
	defer trace.Disable()

	const (
		customers = 8
		shards    = 4
	)
	base := t.TempDir()
	dirP := filepath.Join(base, "primary")
	dirS := filepath.Join(base, "standby")
	if err := os.MkdirAll(dirP, 0o755); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	ready := make(chan serveAddrs, 1)
	serverErr := make(chan error, 1)
	go func() {
		serverErr <- serve(ctx, serveConfig{
			addr:        "127.0.0.1:0",
			rootAddr:    "127.0.0.1:0",
			metricsAddr: "127.0.0.1:0",
			customers:   customers,
			shards:      shards,
			timeout:     60 * time.Second,
			dataDir:     dirP,
			replAddr:    "127.0.0.1:0",
		}, ready)
	}()
	var addrs serveAddrs
	select {
	case addrs = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}
	replAddr := waitReplAddr(t, dirP, 30*time.Second)

	// Hot standby following the daemon's journal stream. It never promotes
	// (the primary seals cleanly); its replication.apply spans land in the
	// shared in-process ring.
	standbyErr := make(chan error, 1)
	go func() {
		standbyErr <- runLive(ctx, liveOptions{
			addr: "127.0.0.1:0", customers: 16, shards: 4,
			tick: 50 * time.Millisecond, seed: 1, spikeTick: -1,
			dataDir: dirS, replicaOf: []string{replAddr}, replicaID: "r0",
			failoverTimeout: time.Minute,
		}, nil)
	}()

	// Concentrator workers: separate OS processes, each dumping its span
	// ring to a file on exit.
	dumps := make([]string, shards)
	workers := make([]*exec.Cmd, shards)
	for i := range workers {
		dumps[i] = filepath.Join(base, fmt.Sprintf("cc-%d-trace.json", i))
		cmd := exec.Command(os.Args[0],
			"-role", "concentrator",
			"-up", addrs.root,
			"-down", addrs.member,
			"-shard", strconv.Itoa(i),
			"-shards", strconv.Itoa(shards),
			"-customers", strconv.Itoa(customers),
			"-trace", "-trace-ring", "16384",
			"-trace-dump", dumps[i],
		)
		cmd.Env = append(os.Environ(), "GRIDD_HELPER=1")
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		workers[i] = cmd
	}
	defer func() {
		for _, w := range workers {
			if w.Process != nil {
				_ = w.Process.Kill()
			}
		}
	}()

	var wg sync.WaitGroup
	clientErrs := make([]error, customers)
	for i := 0; i < customers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			clientErrs[i] = runClient(ctx, addrs.member, fmt.Sprintf("c%02d", i+1), int64(i+1))
		}(i)
	}

	// While the session runs, /trace must answer with session-filtered spans.
	traceDeadline := time.Now().Add(30 * time.Second)
	for {
		var dump trace.Dump
		resp, err := http.Get("http://" + addrs.metrics + "/trace?session=gridd")
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if jerr := json.Unmarshal(body, &dump); jerr != nil {
				t.Fatalf("/trace is not valid JSON: %v\n%s", jerr, body)
			}
		}
		if dump.Enabled && len(dump.Spans) > 0 {
			for _, sp := range dump.Spans {
				if sp.Session != "gridd" {
					t.Fatalf("/trace?session=gridd returned span %+v of session %q", sp, sp.Session)
				}
			}
			break
		}
		if time.Now().After(traceDeadline) {
			t.Fatal("/trace never served a session span while the negotiation ran")
		}
		time.Sleep(10 * time.Millisecond)
	}

	wg.Wait()
	for i, err := range clientErrs {
		if err != nil {
			t.Errorf("client %d: %v", i, err)
		}
	}
	select {
	case err := <-serverErr:
		if err != nil {
			t.Fatalf("server: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server never finished")
	}
	for i, w := range workers {
		done := make(chan error, 1)
		go func(w *exec.Cmd) { done <- w.Wait() }(w)
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("worker %d exited: %v", i, err)
			}
		case <-time.After(15 * time.Second):
			_ = w.Process.Kill()
			t.Errorf("worker %d never exited", i)
		}
	}
	// The sealed journal reached the standby, which shuts down cleanly.
	select {
	case err := <-standbyErr:
		if err != nil {
			t.Fatalf("standby: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("standby never saw the sealed journal")
	}
	rec, err := store.ReadDir(dirS)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Sealed || rec.LastSeq < 2 {
		t.Fatalf("standby journal sealed=%v lastSeq=%d, want the replicated session", rec.Sealed, rec.LastSeq)
	}

	// Merge every process's spans: the in-process ring (daemon, customers,
	// standby) plus the four worker dumps.
	all := tr.Records(trace.Filter{})
	var gotApply bool
	for _, r := range all {
		if r.Name == "replication.apply" {
			gotApply = true
		}
	}
	if !gotApply {
		t.Error("standby recorded no replication.apply span")
	}
	for i, path := range dumps {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("worker %d dump: %v", i, err)
		}
		var d trace.Dump
		if err := json.Unmarshal(data, &d); err != nil {
			t.Fatalf("worker %d dump: %v", i, err)
		}
		want := fmt.Sprintf("gridd-cc-%03d", i)
		if d.Proc != want || !d.Enabled {
			t.Fatalf("worker %d dump proc=%q enabled=%v, want %q", i, d.Proc, d.Enabled, want)
		}
		if d.Dropped != 0 {
			t.Fatalf("worker %d ring dropped %d spans; the stitch check needs the full tree", i, d.Dropped)
		}
		if len(d.Spans) == 0 {
			t.Fatalf("worker %d recorded no spans", i)
		}
		all = append(all, d.Spans...)
	}

	// Stitch: every trace holding session spans forms one tree — a single
	// root, every parent id resolving inside the trace, across processes.
	byTrace := make(map[string][]trace.Record)
	for _, r := range all {
		byTrace[r.Trace] = append(byTrace[r.Trace], r)
	}
	sessionTraces := 0
	for id, recs := range byTrace {
		session := false
		spanSet := make(map[string]bool, len(recs))
		for _, r := range recs {
			spanSet[r.Span] = true
			if r.Session == "gridd" {
				session = true
			}
		}
		if !session {
			continue
		}
		sessionTraces++
		roots := 0
		procs := make(map[string]bool)
		for _, r := range recs {
			procs[r.Proc] = true
			if r.Parent == "" {
				roots++
			} else if !spanSet[r.Parent] {
				t.Errorf("trace %s: span %s (%s in %s) has parent %s recorded in no process", id, r.Span, r.Name, r.Proc, r.Parent)
			}
		}
		if roots != 1 {
			t.Errorf("trace %s stitches into %d roots, want 1", id, roots)
		}
		// The session tree must cross every process: the daemon-side ring
		// and all four workers.
		if len(procs) != shards+1 {
			t.Errorf("trace %s spans %d processes (%v), want %d", id, len(procs), procKeys(procs), shards+1)
		}
	}
	if sessionTraces != 1 {
		t.Errorf("got %d session traces, want exactly 1 tree for the gridd session", sessionTraces)
	}
}

// procKeys lists a proc set for failure messages.
func procKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestCustomerAgentsFiltersConcentrators guards the distributed serve path:
// worker concentrators share the member-tier bus with the fleet, and must
// never count toward — or be modelled in — the customer quorum.
func TestCustomerAgentsFiltersConcentrators(t *testing.T) {
	agents := []string{"c01", "c02", "cc-000", "cc-001", "c03"}
	got := customerAgents(agents)
	if len(got) != 3 {
		t.Fatalf("customerAgents = %v, want the 3 customers", got)
	}
	for _, n := range got {
		if strings.HasPrefix(n, "cc-") {
			t.Fatalf("concentrator %q leaked into the fleet model", n)
		}
	}
}

// TestShardsFlagValidation rejects nonsensical shard counts.
func TestShardsFlagValidation(t *testing.T) {
	err := run(context.Background(), []string{"-serve", ":0", "-shards", "0"})
	if err == nil || !strings.Contains(err.Error(), "-shards") {
		t.Fatalf("error = %v, want -shards validation", err)
	}
}

// TestServeShutsDownOnCancel covers graceful shutdown: a cancelled context
// unwinds the daemon while it waits for customers, with a nil error.
func TestServeShutsDownOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan serveAddrs, 1)
	serverErr := make(chan error, 1)
	go func() {
		serverErr <- serve(ctx, serveConfig{addr: "127.0.0.1:0", customers: 3, shards: 1, timeout: 30 * time.Second}, ready)
	}()
	select {
	case <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}
	cancel()
	select {
	case err := <-serverErr:
		if err != nil {
			t.Fatalf("interrupted serve returned %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down on cancellation")
	}
}

// TestLiveGridServesHealthAndMetrics boots the live grid, scrapes both HTTP
// endpoints while it ticks, and shuts it down via context cancellation.
func TestLiveGridServesHealthAndMetrics(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	liveErr := make(chan error, 1)
	go func() {
		liveErr <- runLive(ctx, liveOptions{
			addr: "127.0.0.1:0", customers: 16, shards: 4,
			tick: 20 * time.Millisecond, seed: 1, spikeTick: -1,
		}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("live grid never became ready")
	}

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	health := get("/healthz")
	for _, want := range []string{`"status":"ok"`, `"role":"primary"`, `"tick"`} {
		if !strings.Contains(health, want) {
			t.Fatalf("healthz missing %s: %s", want, health)
		}
	}

	// Let a few ticks elapse so the gauges carry real measurements.
	time.Sleep(150 * time.Millisecond)
	metrics := get("/metrics")
	for _, want := range []string{
		"grid_tick ",
		"grid_readings_total ",
		"grid_renegotiations_total 0",
		"grid_fleet_load_kwh ",
		"grid_fleet_target_kwh ",
		`grid_shard_load_kwh{shard="0"}`,
		`grid_shard_breached{shard="3"} 0`,
		`grid_shard_renegotiations_total{shard="0"} 0`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}

	cancel()
	select {
	case err := <-liveErr:
		if err != nil {
			t.Fatalf("live grid returned %v, want nil on cancellation", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("live grid did not shut down on cancellation")
	}
}

// liveArgs renders the durable live-grid flag set the recovery test runs
// three times (reference, victim, recovery) — identical every time, which is
// the recovery contract.
func liveArgs(dataDir string) []string {
	return []string{
		"-serve", "127.0.0.1:0", "-live",
		"-customers", "16", "-shards", "4",
		"-tick", "25ms", "-live-ticks", "20", "-seed", "3",
		"-data-dir", dataDir,
		"-spike-shards", "1,2", "-spike-tick", "4", "-spike-factor", "2.5",
		"-snapshot-every", "6",
	}
}

// TestRecoveryByteIdenticalAwards is the durability headline: a gridd
// killed (SIGKILL, no chance to flush or seal) in the middle of its live
// loop and restarted from the same -data-dir finishes the run with awards
// and shard profiles byte-identical to an uninterrupted run's.
func TestRecoveryByteIdenticalAwards(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a victim process")
	}
	base := t.TempDir()
	dirU := filepath.Join(base, "uninterrupted")
	dirC := filepath.Join(base, "crashed")

	// Reference: the same run, uninterrupted.
	if err := run(context.Background(), liveArgs(dirU)); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	want, err := os.ReadFile(filepath.Join(dirU, "awards.json"))
	if err != nil {
		t.Fatalf("reference awards: %v", err)
	}
	var wantProfile struct {
		Tick           int `json:"tick"`
		Renegotiations int `json:"renegotiations"`
	}
	if err := json.Unmarshal(want, &wantProfile); err != nil {
		t.Fatal(err)
	}
	if wantProfile.Tick != 20 || wantProfile.Renegotiations == 0 {
		t.Fatalf("reference run reached tick %d with %d renegotiations; the spike must force at least one",
			wantProfile.Tick, wantProfile.Renegotiations)
	}

	// Victim: the same run as a separate OS process, killed mid-loop.
	cmd := exec.Command(os.Args[0], liveArgs(dirC)...)
	cmd.Env = append(os.Environ(), "GRIDD_HELPER=1")
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait until at least 8 ticks are durable (registration is 2 records,
	// the initial session 1, then one record per tick), then SIGKILL.
	deadline := time.Now().Add(30 * time.Second)
	for {
		rec, err := store.ReadDir(dirC)
		if err == nil && rec.LastSeq >= 11 {
			break
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			t.Fatal("victim never journaled 8 ticks")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err == nil {
		t.Fatal("victim exited cleanly; the test needed to kill it mid-loop")
	}
	if _, err := os.Stat(filepath.Join(dirC, "awards.json")); !os.IsNotExist(err) {
		t.Fatalf("killed victim left awards.json (err %v); it must only appear after a completed run", err)
	}

	// Recovery: restart from the same data dir and let it finish.
	if err := run(context.Background(), liveArgs(dirC)); err != nil {
		t.Fatalf("recovery run: %v", err)
	}
	got, err := os.ReadFile(filepath.Join(dirC, "awards.json"))
	if err != nil {
		t.Fatalf("recovered awards: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered run diverged from the uninterrupted run\n got: %s\nwant: %s", got, want)
	}
	// The recovered journal must now be sealed.
	rec, err := store.ReadDir(dirC)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Sealed {
		t.Fatal("recovered run did not seal the journal on exit")
	}
}

// TestServeDrainsClientsOnInterrupt covers the SIGTERM drain fix: a daemon
// interrupted with customers connected broadcasts an aborting session end —
// every client exits cleanly instead of erroring on a dead TCP connection —
// and journals the session as aborted.
func TestServeDrainsClientsOnInterrupt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	dataDir := t.TempDir()
	ready := make(chan serveAddrs, 1)
	serverErr := make(chan error, 1)
	go func() {
		serverErr <- serve(ctx, serveConfig{
			addr: "127.0.0.1:0", customers: 3, shards: 1,
			timeout: 30 * time.Second, dataDir: dataDir,
		}, ready)
	}()
	var addr string
	select {
	case a := <-ready:
		addr = a.member
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}

	// Two of three expected customers connect; the negotiation never starts.
	clientErrs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			clientErrs <- runClient(context.Background(), addr, fmt.Sprintf("c%02d", i+1), int64(i+1))
		}(i)
	}
	// Let the clients register, then interrupt the daemon.
	time.Sleep(500 * time.Millisecond)
	cancel()

	for i := 0; i < 2; i++ {
		select {
		case err := <-clientErrs:
			if err != nil {
				t.Fatalf("client saw %v; the drain must deliver a session end", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("client hung after server interrupt")
		}
	}
	select {
	case err := <-serverErr:
		if err != nil {
			t.Fatalf("interrupted serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}
	rec, err := store.ReadDir(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	var aborted bool
	for _, r := range rec.Records {
		if r.Kind == store.KindAborted {
			aborted = true
		}
	}
	if !aborted {
		t.Fatalf("journal holds no aborted-session record (got %d records)", len(rec.Records))
	}
}

// TestServeJournalsOutcome checks the one-shot daemon journals its session
// outcome and seals the journal.
func TestServeJournalsOutcome(t *testing.T) {
	dataDir := t.TempDir()
	ctx := context.Background()
	ready := make(chan serveAddrs, 1)
	serverErr := make(chan error, 1)
	go func() {
		serverErr <- serve(ctx, serveConfig{
			addr: "127.0.0.1:0", customers: 2, shards: 1,
			timeout: 30 * time.Second, dataDir: dataDir,
		}, ready)
	}()
	var addr string
	select {
	case a := <-ready:
		addr = a.member
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := runClient(ctx, addr, fmt.Sprintf("c%02d", i+1), int64(i+1)); err != nil {
				t.Errorf("client %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-serverErr:
		if err != nil {
			t.Fatalf("server: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server never finished")
	}
	rec, err := store.ReadDir(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Sealed {
		t.Fatal("journal not sealed after a completed session")
	}
	var outcome *store.SessionOutcome
	for _, r := range rec.Records {
		if r.Kind == store.KindSession {
			o, err := store.DecodeSession(r)
			if err != nil {
				t.Fatal(err)
			}
			outcome = &o
		}
	}
	if outcome == nil || outcome.SessionID != "gridd" || len(outcome.Awards) == 0 {
		t.Fatalf("journaled outcome = %+v, want the gridd session with awards", outcome)
	}
}

// failoverArgs renders the replicated live-grid flag set shared by the
// reference, victim-primary and standby runs of the failover tests. The grid
// parameters are identical everywhere (the recovery contract); only the
// replication role flags differ per process.
func failoverArgs(dataDir string, extra ...string) []string {
	args := []string{
		"-serve", "127.0.0.1:0", "-live",
		"-customers", "16", "-shards", "4",
		"-tick", "50ms", "-live-ticks", "30", "-seed", "5",
		"-data-dir", dataDir,
		"-spike-shards", "1,2", "-spike-tick", "4", "-spike-factor", "2.5",
		"-snapshot-every", "8",
	}
	return append(args, extra...)
}

// waitReplAddr polls for the <data-dir>/repl-addr file a replicating daemon
// publishes once its stream listener is bound.
func waitReplAddr(t *testing.T, dataDir string, d time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		if b, err := os.ReadFile(filepath.Join(dataDir, "repl-addr")); err == nil && len(b) > 0 {
			return string(b)
		}
		if time.Now().After(deadline) {
			t.Fatal("replication address file never appeared")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFailoverByteIdenticalAwards is the high-availability headline: a
// primary gridd streaming its journal to a hot standby is SIGKILLed in the
// middle of its live loop; the standby detects the silence, promotes, and
// finishes the run with awards and shard profiles byte-identical to an
// uninterrupted single-node run — no committed negotiation outcome is lost
// across the failover.
func TestFailoverByteIdenticalAwards(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a victim process")
	}
	base := t.TempDir()
	dirU := filepath.Join(base, "uninterrupted")
	dirP := filepath.Join(base, "primary")
	dirS := filepath.Join(base, "standby")

	// Reference: the same run, uninterrupted, unreplicated.
	if err := run(context.Background(), failoverArgs(dirU)); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	want, err := os.ReadFile(filepath.Join(dirU, "awards.json"))
	if err != nil {
		t.Fatalf("reference awards: %v", err)
	}
	var wantProfile struct {
		Tick           int `json:"tick"`
		Renegotiations int `json:"renegotiations"`
	}
	if err := json.Unmarshal(want, &wantProfile); err != nil {
		t.Fatal(err)
	}
	if wantProfile.Tick != 30 || wantProfile.Renegotiations == 0 {
		t.Fatalf("reference run reached tick %d with %d renegotiations; the spike must force at least one",
			wantProfile.Tick, wantProfile.Renegotiations)
	}

	// Victim primary: a separate OS process streaming its journal.
	if err := os.MkdirAll(dirP, 0o755); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0], failoverArgs(dirP, "-repl-addr", "127.0.0.1:0")...)
	cmd.Env = append(os.Environ(), "GRIDD_HELPER=1")
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
		}
	}()
	replAddr := waitReplAddr(t, dirP, 30*time.Second)

	// Hot standby in this process, with a short failover timeout.
	standbyErr := make(chan error, 1)
	go func() {
		standbyErr <- run(context.Background(), failoverArgs(dirS,
			"-replica-of", replAddr, "-replica-id", "r0", "-failover-timeout", "750ms"))
	}()

	// Wait until the standby has replicated at least 8 ticks (registration
	// is 2 records, the initial session 1, then one per tick), then SIGKILL
	// the primary mid-loop.
	deadline := time.Now().Add(30 * time.Second)
	for {
		rec, err := store.ReadDir(dirS)
		if err == nil && rec.LastSeq >= 11 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("standby never replicated 8 ticks")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err == nil {
		t.Fatal("victim exited cleanly; the test needed to kill it mid-loop")
	}

	// The promoted standby must finish the run and write its awards.
	select {
	case err := <-standbyErr:
		if err != nil {
			t.Fatalf("standby run: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("standby never finished after the primary was killed")
	}
	got, err := os.ReadFile(filepath.Join(dirS, "awards.json"))
	if err != nil {
		t.Fatalf("promoted standby awards: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("failed-over run diverged from the uninterrupted run\n got: %s\nwant: %s", got, want)
	}

	// The standby journal seals the divergence point and the final state.
	rec, err := store.ReadDir(dirS)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Sealed {
		t.Fatal("promoted standby did not seal its journal on exit")
	}
}

// TestFailoverDrillServesAwards is the CI failover drill: kill the primary,
// assert the standby's /healthz flips from standby to primary and /awards
// keeps answering, all within 5 seconds of the kill.
func TestFailoverDrillServesAwards(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a victim process")
	}
	base := t.TempDir()
	dirP := filepath.Join(base, "primary")
	dirS := filepath.Join(base, "standby")
	if err := os.MkdirAll(dirP, 0o755); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0], failoverArgs(dirP, "-repl-addr", "127.0.0.1:0", "-live-ticks", "0")...)
	cmd.Env = append(os.Environ(), "GRIDD_HELPER=1")
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
		}
	}()
	replAddr := waitReplAddr(t, dirP, 30*time.Second)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	standbyErr := make(chan error, 1)
	go func() {
		standbyErr <- runLive(ctx, liveOptions{
			addr: "127.0.0.1:0", customers: 16, shards: 4,
			tick: 50 * time.Millisecond, maxTicks: 0, seed: 5,
			dataDir: dirS, snapshotEvery: 8,
			spikeShards: []int{1, 2}, spikeTick: 4, spikeFactor: 2.5,
			replicaOf: []string{replAddr}, replicaID: "r0",
			failoverTimeout: 750 * time.Millisecond,
		}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("standby never became ready")
	}

	get := func(path string) (string, error) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return string(body), err
	}

	// Read replica: /healthz reports the standby role and replication
	// state; /awards answers from the replica state. Wait until the initial
	// negotiation outcome has replicated (registration is 2 records, the
	// session outcome the 3rd) so the kill lands on a standby that holds
	// committed state.
	deadline := time.Now().Add(15 * time.Second)
	for {
		health, err := get("/healthz")
		if err == nil && strings.Contains(health, `"role":"standby"`) && strings.Contains(health, `"sourceUp":true`) {
			var doc struct {
				LastAppliedSeq uint64 `json:"lastAppliedSeq"`
			}
			if jerr := json.Unmarshal([]byte(health), &doc); jerr != nil {
				t.Fatalf("standby healthz not JSON: %v\n%s", jerr, health)
			}
			if doc.LastAppliedSeq >= 3 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("standby healthz never reported a caught-up stream: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if awards, err := get("/awards"); err != nil || !strings.Contains(awards, `"awards"`) {
		t.Fatalf("read replica /awards = %q, %v", awards, err)
	}
	if repl, err := get("/replication"); err != nil || !strings.Contains(repl, `"role":"standby"`) {
		t.Fatalf("/replication = %q, %v", repl, err)
	}

	// Kill the primary; the standby must promote and serve /awards as
	// primary within 5 seconds.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()
	killAt := time.Now()
	for {
		health, err := get("/healthz")
		if err == nil && strings.Contains(health, `"role":"primary"`) {
			break
		}
		if time.Since(killAt) > 5*time.Second {
			t.Fatalf("standby did not promote within 5s of the kill (healthz: %v %v)", health, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if awards, err := get("/awards"); err != nil || !strings.Contains(awards, `"awards"`) {
		t.Fatalf("promoted /awards = %q, %v", awards, err)
	}
	t.Logf("standby promoted and serving %v after the kill", time.Since(killAt).Round(time.Millisecond))

	cancel()
	select {
	case err := <-standbyErr:
		if err != nil {
			t.Fatalf("promoted standby shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("promoted standby did not shut down on cancellation")
	}
}

// TestLiveGridBoundedTicks runs the live grid to its -live-ticks limit.
func TestLiveGridBoundedTicks(t *testing.T) {
	err := runLive(context.Background(), liveOptions{
		addr: "127.0.0.1:0", customers: 8, shards: 2,
		tick: time.Millisecond, maxTicks: 3, seed: 1, spikeTick: -1,
	}, nil)
	if err != nil {
		t.Fatalf("bounded live run: %v", err)
	}
}
