package protocol

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"loadbalance/internal/units"
)

func paperParams() Params {
	return Params{
		Beta:                1.95,
		MaxRewardSlope:      125, // max_reward(0.4) = 50
		Epsilon:             1,
		AllowedOveruseRatio: 0.15,
	}
}

func TestNewLinearTableMatchesFigure6(t *testing.T) {
	// Figure 6: rewards 0, 4.25, 8.5, 12.75, 17 for cut-downs 0 … 0.4.
	tab, err := StandardTable(42.5)
	if err != nil {
		t.Fatal(err)
	}
	wants := map[float64]float64{0: 0, 0.1: 4.25, 0.2: 8.5, 0.3: 12.75, 0.4: 17}
	for cd, want := range wants {
		got, ok := tab.RewardFor(cd)
		if !ok || !units.NearlyEqual(got, want, 1e-9) {
			t.Fatalf("reward(%v) = %v/%v, want %v", cd, got, ok, want)
		}
	}
	if len(tab.Entries) != 10 {
		t.Fatalf("entries = %d, want 10", len(tab.Entries))
	}
}

func TestNewLinearTableValidation(t *testing.T) {
	if _, err := NewLinearTable(nil, 1); !errors.Is(err, ErrBadTable) {
		t.Fatal("empty levels should fail")
	}
	if _, err := NewLinearTable([]float64{0.2, 0.1}, 1); !errors.Is(err, ErrBadTable) {
		t.Fatal("unordered levels should fail")
	}
	if _, err := NewLinearTable([]float64{0.1, 0.1}, 1); !errors.Is(err, ErrBadTable) {
		t.Fatal("duplicate levels should fail")
	}
	if _, err := NewLinearTable([]float64{1.2}, 1); !errors.Is(err, ErrBadTable) {
		t.Fatal("level above 1 should fail")
	}
	if _, err := NewLinearTable([]float64{0.1}, -3); !errors.Is(err, ErrBadTable) {
		t.Fatal("negative slope should fail")
	}
}

// TestUpdateFormula pins a hand-computed application of the paper's rule:
// reward 17, beta 1.95, overuse 0.35, max_reward 50 gives
// 17 + 1.95·0.35·(1 − 17/50)·17 = 17 + 7.6577… ≈ 24.658.
func TestUpdateFormula(t *testing.T) {
	tab := Table{Entries: []Entry{{CutDown: 0.4, Reward: 17}}}
	next, delta := tab.Update(0.35, paperParams())
	got, _ := next.RewardFor(0.4)
	want := 17 + 1.95*0.35*(1-17.0/50)*17
	if !units.NearlyEqual(got, want, 1e-9) {
		t.Fatalf("updated reward = %v, want %v", got, want)
	}
	if !units.NearlyEqual(delta, want-17, 1e-9) {
		t.Fatalf("delta = %v, want %v", delta, want-17)
	}
}

func TestUpdateZeroRewardStaysZero(t *testing.T) {
	tab := Table{Entries: []Entry{{CutDown: 0, Reward: 0}, {CutDown: 0.1, Reward: 0}}}
	next, delta := tab.Update(0.5, paperParams())
	for _, e := range next.Entries {
		if e.Reward != 0 {
			t.Fatalf("zero reward grew to %v", e.Reward)
		}
	}
	if delta != 0 {
		t.Fatalf("delta = %v, want 0", delta)
	}
}

func TestUpdateNeverExceedsCeiling(t *testing.T) {
	p := paperParams()
	tab := Table{Entries: []Entry{{CutDown: 0.4, Reward: 49.9}}}
	next, _ := tab.Update(5, p) // huge overuse
	got, _ := next.RewardFor(0.4)
	if got > p.MaxRewardAt(0.4)+1e-12 {
		t.Fatalf("reward %v exceeded ceiling %v", got, p.MaxRewardAt(0.4))
	}
}

func TestUpdateNonPositiveOveruseIsIdentity(t *testing.T) {
	tab, err := StandardTable(42.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, overuse := range []float64{0, -0.2} {
		next, delta := tab.Update(overuse, paperParams())
		if !next.DominatesOrEqual(tab) || !tab.DominatesOrEqual(next) {
			t.Fatalf("overuse %v changed the table", overuse)
		}
		if delta != 0 {
			t.Fatalf("delta = %v, want 0", delta)
		}
	}
}

func TestDominatesOrEqual(t *testing.T) {
	base, err := StandardTable(42.5)
	if err != nil {
		t.Fatal(err)
	}
	up, _ := base.Update(0.35, paperParams())
	if !up.DominatesOrEqual(base) {
		t.Fatal("updated table must dominate the original")
	}
	if base.DominatesOrEqual(up) {
		t.Fatal("original must not dominate the updated table")
	}
	other := Table{Entries: []Entry{{CutDown: 0.5, Reward: 1}}}
	if base.DominatesOrEqual(other) {
		t.Fatal("tables with different levels must not compare")
	}
}

func TestAtCeiling(t *testing.T) {
	p := paperParams()
	low, err := StandardTable(42.5)
	if err != nil {
		t.Fatal(err)
	}
	if low.AtCeiling(p, 1) {
		t.Fatal("fresh table should not be at ceiling")
	}
	full := low.Clone()
	for i, e := range full.Entries {
		full.Entries[i].Reward = p.MaxRewardAt(e.CutDown)
	}
	if !full.AtCeiling(p, 1) {
		t.Fatal("maxed table should be at ceiling")
	}
}

func TestTableMessageRoundTrip(t *testing.T) {
	tab, err := StandardTable(42.5)
	if err != nil {
		t.Fatal(err)
	}
	msg := tab.Message(testWindow(), 3)
	if err := msg.Validate(); err != nil {
		t.Fatalf("wire table invalid: %v", err)
	}
	if msg.Round != 3 {
		t.Fatalf("round = %d", msg.Round)
	}
	back := TableFromMessage(msg)
	if !back.DominatesOrEqual(tab) || !tab.DominatesOrEqual(back) {
		t.Fatal("round trip changed the table")
	}
}

func TestTableString(t *testing.T) {
	tab := Table{Entries: []Entry{{CutDown: 0.4, Reward: 24.8}}}
	if got := tab.String(); !strings.Contains(got, "0.4:24.80") {
		t.Fatalf("String = %q", got)
	}
}

// Property: for any non-negative overuse the update yields a table that
// dominates the original (monotonic concession) and never exceeds ceilings.
func TestUpdateMonotoneProperty(t *testing.T) {
	p := paperParams()
	base, err := StandardTable(42.5)
	if err != nil {
		t.Fatal(err)
	}
	f := func(overuseRaw uint16, rounds uint8) bool {
		overuse := float64(overuseRaw) / 1000 // 0 … 65.5
		cur := base.Clone()
		for i := 0; i < int(rounds%8)+1; i++ {
			next, _ := cur.Update(overuse, p)
			if !next.DominatesOrEqual(cur) {
				return false
			}
			for _, e := range next.Entries {
				if e.Reward > p.MaxRewardAt(e.CutDown)+1e-9 {
					return false
				}
			}
			cur = next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: repeated updates with constant positive overuse converge — the
// deltas shrink to (at or below) epsilon in bounded rounds, which is the
// paper's convergence guarantee.
func TestUpdateConvergesProperty(t *testing.T) {
	p := paperParams()
	f := func(overuseRaw uint16) bool {
		overuse := 0.05 + float64(overuseRaw%400)/100 // 0.05 … 4.04
		tab, err := StandardTable(42.5)
		if err != nil {
			return false
		}
		for i := 0; i < 500; i++ {
			next, delta := tab.Update(overuse, p)
			if delta <= p.Epsilon {
				return true
			}
			tab = next
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
