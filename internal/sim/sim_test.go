package sim

import (
	"path/filepath"
	"strconv"

	"loadbalance/internal/core"
	"loadbalance/internal/utilityagent"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Name:    "demo",
		Columns: []string{"a", "b"},
		Notes:   "hello",
	}
	tab.AddRow("1", "2")
	tab.AddRow("333") // short row padded
	tab.AddRowF(4.5, 7)

	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,b\n1,2\n") {
		t.Fatalf("CSV = %q", csv)
	}
	s := tab.String()
	for _, want := range []string{"== demo ==", "a", "b", "333", "4.5", "note: hello"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String missing %q:\n%s", want, s)
		}
	}
}

func TestE1DemandCurve(t *testing.T) {
	prof, tab, err := E1DemandCurve(60, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Samples) != 96 {
		t.Fatalf("samples = %d", len(prof.Samples))
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Shape assertions: a real peak-to-mean ratio and at least two peaks.
	ptm, err := strconv.ParseFloat(tab.Rows[0][4], 64)
	if err != nil || ptm < 1.2 {
		t.Fatalf("peak_to_mean = %v (%v)", tab.Rows[0][4], err)
	}
	peaks, err := strconv.Atoi(tab.Rows[0][5])
	if err != nil || peaks < 2 {
		t.Fatalf("local peaks = %v", tab.Rows[0][5])
	}
	if _, _, err := E1DemandCurve(0, 1); err == nil {
		t.Fatal("zero households should fail")
	}
}

func TestE2E3E10(t *testing.T) {
	e2, err := E2InitialPhase()
	if err != nil {
		t.Fatal(err)
	}
	if len(e2.Rows) != 10 {
		t.Fatalf("E2 rows = %d, want 10 cut-down levels", len(e2.Rows))
	}
	// Figure 6: reward 17 at 0.4 in round 1.
	if e2.Rows[4][0] != "0.4" || e2.Rows[4][1] != "17" {
		t.Fatalf("E2 row = %v", e2.Rows[4])
	}
	if !strings.Contains(e2.Notes, "overuse 35") {
		t.Fatalf("E2 notes = %q", e2.Notes)
	}

	e3, err := E3FinalPhase()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e3.Name, "round 3") {
		t.Fatalf("E3 name = %q", e3.Name)
	}
	r3, err := strconv.ParseFloat(e3.Rows[4][1], 64)
	if err != nil || r3 < 24.3 || r3 > 25.3 {
		t.Fatalf("E3 reward(0.4) = %v, want ≈24.8", e3.Rows[4][1])
	}

	e10, err := E10RewardTableSeries()
	if err != nil {
		t.Fatal(err)
	}
	if len(e10.Rows) != 30 { // 3 rounds × 10 levels
		t.Fatalf("E10 rows = %d, want 30", len(e10.Rows))
	}
}

func TestE4(t *testing.T) {
	e4, err := E4CustomerDecision()
	if err != nil {
		t.Fatal(err)
	}
	if len(e4.Rows) != 3 {
		t.Fatalf("E4 rows = %d, want 3 rounds", len(e4.Rows))
	}
	// Bids 0.2, 0.4, 0.4 (Figures 8-9).
	wantBids := []string{"0.2", "0.4", "0.4"}
	for i, want := range wantBids {
		if got := e4.Rows[i][5]; got != want {
			t.Fatalf("E4 round %d bid = %q, want %q", i+1, got, want)
		}
	}
}

func TestE5MethodComparisonShape(t *testing.T) {
	tab, err := E5MethodComparison(12, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 methods", len(tab.Rows))
	}
	num := func(i, col int) float64 {
		v, err := strconv.ParseFloat(tab.Rows[i][col], 64)
		if err != nil {
			t.Fatalf("parse row %d col %d: %v", i, col, err)
		}
		return v
	}
	// Shape (Section 3.2.4): the offer is a single round; the reward-table
	// method iterates, clears the peak to within the allowed overuse, and
	// costs the utility less than blanket discounting (the offer's
	// cost-per-kWh-saved is worse because every accepter gets the discount
	// on its whole within-cap usage, not just on the saved energy).
	if got := int(num(0, 1)); got != 1 {
		t.Fatalf("offer rounds = %d, want 1", got)
	}
	if got := int(num(2, 1)); got <= 1 {
		t.Fatalf("reward-table rounds = %d, want > 1", got)
	}
	if got := num(2, 3); got > 0.13+1e-9 {
		t.Fatalf("reward-table final ratio = %v, want ≤ allowed 0.13", got)
	}
	if offerCost, rtCost := num(0, 4), num(2, 4); rtCost >= offerCost {
		t.Fatalf("reward tables (%v) should cost less than blanket discounts (%v)", rtCost, offerCost)
	}
	// The iterated methods exchange more messages than the one-shot offer.
	if offerMsgs, rtMsgs := num(0, 2), num(2, 2); rtMsgs <= offerMsgs {
		t.Fatalf("reward-table messages (%v) should exceed offer messages (%v)", rtMsgs, offerMsgs)
	}
}

func TestE6BetaSweepShape(t *testing.T) {
	tab, err := E6BetaSweep([]float64{1.0, 3.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 { // 2 constant + 2 adaptive
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	rounds := func(i int) int {
		n, err := strconv.Atoi(tab.Rows[i][2])
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		return n
	}
	// Larger beta concedes faster: no more rounds than the smaller beta.
	if rounds(1) > rounds(0) {
		t.Fatalf("beta 3.0 rounds (%d) > beta 1.0 rounds (%d)", rounds(1), rounds(0))
	}
	// Adaptive beta at the slow setting beats or ties constant slow beta.
	if rounds(2) > rounds(0) {
		t.Fatalf("adaptive rounds (%d) > constant rounds (%d)", rounds(2), rounds(0))
	}
}

func TestE7ScalabilityShape(t *testing.T) {
	tab, err := E7Scalability([]int{5, 20}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	msgs := func(i int) int {
		n, err := strconv.Atoi(tab.Rows[i][2])
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		return n
	}
	if msgs(1) <= msgs(0) {
		t.Fatalf("messages should grow with fleet size: %d vs %d", msgs(0), msgs(1))
	}
}

func TestE8PropertiesHold(t *testing.T) {
	tab, err := E8ProtocolProperties(3, 11)
	if err != nil {
		t.Fatalf("property violation: %v", err)
	}
	for _, row := range tab.Rows {
		if row[5] != "0" {
			t.Fatalf("violations in row %v", row)
		}
	}
}

func TestE9FailureInjectionTerminates(t *testing.T) {
	tab, err := E9FailureInjection([]float64{0, 0.1}, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[5] == "" {
			t.Fatalf("missing outcome in %v", row)
		}
	}
}

func TestE11DayPeakShaving(t *testing.T) {
	tab, err := E11DayPeakShaving(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d, want 12 windows", len(tab.Rows))
	}
	negotiated := 0
	for _, row := range tab.Rows {
		if row[3] == "yes" {
			negotiated++
			before, err1 := strconv.ParseFloat(row[1], 64)
			after, err2 := strconv.ParseFloat(row[4], 64)
			if err1 != nil || err2 != nil {
				t.Fatalf("parse row %v: %v %v", row, err1, err2)
			}
			if after >= before {
				t.Fatalf("window %s not shaved: %v -> %v", row[0], before, after)
			}
		}
	}
	if negotiated == 0 {
		t.Fatal("no window triggered a negotiation; the day should have peaks")
	}
	if !strings.Contains(tab.Notes, "shaved") {
		t.Fatalf("notes = %q", tab.Notes)
	}
}

func TestE12MarketComparison(t *testing.T) {
	tab, err := E12MarketComparison(15, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 mechanisms", len(tab.Rows))
	}
	if tab.Rows[0][0] != "reward_table" || tab.Rows[1][0] != "market" {
		t.Fatalf("mechanisms = %v / %v", tab.Rows[0][0], tab.Rows[1][0])
	}
	// Both mechanisms must resolve the 35% overuse down to at most the
	// reward-table's allowed ratio (market clears to <= 0 by construction).
	rtRatio, err := strconv.ParseFloat(tab.Rows[0][3], 64)
	if err != nil {
		t.Fatal(err)
	}
	mkRatio, err := strconv.ParseFloat(tab.Rows[1][3], 64)
	if err != nil {
		t.Fatal(err)
	}
	if rtRatio > 0.13+1e-9 {
		t.Fatalf("reward-table ratio = %v", rtRatio)
	}
	if mkRatio > 1e-6 {
		t.Fatalf("market ratio = %v, want <= 0", mkRatio)
	}
	// The market clears in one pass with 2n messages; the protocol uses
	// more traffic.
	rtMsgs, _ := strconv.ParseFloat(tab.Rows[0][2], 64)
	mkMsgs, _ := strconv.ParseFloat(tab.Rows[1][2], 64)
	if mkMsgs >= rtMsgs {
		t.Fatalf("market messages (%v) should undercut protocol messages (%v)", mkMsgs, rtMsgs)
	}
}

func TestE13ForecastDrivenNegotiation(t *testing.T) {
	tab, err := E13ForecastDrivenNegotiation(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want oracle + forecast", len(tab.Rows))
	}
	if tab.Rows[0][0] != "oracle" || tab.Rows[1][0] != "forecast" {
		t.Fatalf("labels = %v / %v", tab.Rows[0][0], tab.Rows[1][0])
	}
	if !strings.Contains(tab.Notes, "MAPE") {
		t.Fatalf("notes = %q", tab.Notes)
	}
	// Both runs must terminate with a real outcome.
	for _, row := range tab.Rows {
		if row[4] == "" {
			t.Fatalf("missing outcome: %v", row)
		}
	}
	// The forecast cannot be exact: MAPE must be positive (weather noise).
	if strings.Contains(tab.Notes, "MAPE 0.0%") {
		t.Fatalf("suspiciously perfect forecast: %q", tab.Notes)
	}
}

func TestSaveAndLoadResult(t *testing.T) {
	s, err := core.PaperScenario()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "result.json")
	if err := SaveResult(res, path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadResult(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rounds != res.Rounds || back.Outcome != res.Outcome {
		t.Fatalf("round trip changed result: %+v vs %+v", back.Rounds, res.Rounds)
	}
	if len(back.History) != len(res.History) {
		t.Fatalf("history = %d, want %d", len(back.History), len(res.History))
	}
	r1, _ := back.History[0].Table.RewardFor(0.4)
	if r1 != 17 {
		t.Fatalf("loaded round-1 reward = %v", r1)
	}
	if back.FinalBids["c01"] != res.FinalBids["c01"] {
		t.Fatal("final bids lost")
	}
	if back.Elapsed != res.Elapsed {
		t.Fatal("elapsed lost")
	}
	// The rendered trace of the loaded result matches the live one.
	if RenderResult(back) != RenderResult(res) {
		t.Fatal("rendered traces differ after round trip")
	}
	if _, err := LoadResult(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestRenderResultOfferAndRFB(t *testing.T) {
	s, err := core.PaperScenario()
	if err != nil {
		t.Fatal(err)
	}
	s.Method = utilityagent.MethodOffer
	res, err := core.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderResult(res)
	if !strings.Contains(out, "offer:") || !strings.Contains(out, "discount cost") {
		t.Fatalf("offer render missing sections:\n%s", out)
	}

	s2, err := core.PaperScenario()
	if err != nil {
		t.Fatal(err)
	}
	s2.Method = utilityagent.MethodRequestForBids
	res2, err := core.Run(s2)
	if err != nil {
		t.Fatal(err)
	}
	out2 := RenderResult(res2)
	if !strings.Contains(out2, "bids") || !strings.Contains(out2, "round 1") {
		t.Fatalf("rfb render missing sections:\n%s", out2)
	}
}
