package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// LockedSend returns the lockedsend analyzer.
//
// Invariant guarded: never block on a channel send or a network write
// while holding a mutex. A send under a lock couples the lock's critical
// section to an arbitrary consumer: one stalled peer parks every other
// goroutine that needs the mutex — the exact hang class PR 3's
// encode-outside-lock rework eliminated in internal/bus. The analyzer
// tracks locks it can prove held by straight-line analysis within one
// function (x.Lock() … x.Unlock(), or defer x.Unlock()) and flags:
//
//   - channel sends (`ch <- v`), except non-blocking sends in a
//     select that has a default clause;
//   - method calls on values implementing net.Conn (Write and friends
//     block on the peer's TCP window).
//
// The analysis is deliberately conservative: lock state does not propagate
// out of nested blocks, across function calls, or into goroutine bodies,
// so every report is a provable hold.
func LockedSend() *Analyzer {
	return &Analyzer{
		Name: "lockedsend",
		Doc:  "flags blocking channel sends and net.Conn writes while a sync mutex is provably held",
		Run: func(pass *Pass) error {
			connIface := netConnInterface(pass.Pkg)
			for _, f := range pass.Files {
				for _, decl := range f.Decls {
					if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
						walkLocked(pass, connIface, fd.Body, map[string]bool{})
					}
				}
			}
			return nil
		},
	}
}

// blockingConnMethods are the net.Conn methods that block on the peer
// (deadline setters, Close and the addr accessors are local and fine).
var blockingConnMethods = map[string]bool{
	"Write": true, "Read": true, "ReadFrom": true, "WriteTo": true,
}

// netConnInterface digs the net.Conn interface type out of the package's
// import graph; nil when the package never pulls in net.
func netConnInterface(pkg *types.Package) *types.Interface {
	seen := make(map[*types.Package]bool)
	var find func(p *types.Package) *types.Interface
	find = func(p *types.Package) *types.Interface {
		if seen[p] {
			return nil
		}
		seen[p] = true
		if p.Path() == "net" {
			if obj, ok := p.Scope().Lookup("Conn").(*types.TypeName); ok {
				if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
					return iface
				}
			}
			return nil
		}
		for _, imp := range p.Imports() {
			if iface := find(imp); iface != nil {
				return iface
			}
		}
		return nil
	}
	return find(pkg)
}

// walkLocked walks stmts in order, tracking which mutexes are held. held
// maps the rendered receiver expression ("b.mu") to true. Nested blocks
// get a copy: a Lock inside a branch is not provably held after it.
func walkLocked(pass *Pass, conn *types.Interface, block *ast.BlockStmt, held map[string]bool) {
	for _, stmt := range block.List {
		walkLockedStmt(pass, conn, stmt, held)
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	c := make(map[string]bool, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

func walkLockedStmt(pass *Pass, conn *types.Interface, stmt ast.Stmt, held map[string]bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if key, op := mutexOp(pass.TypesInfo, s.X); key != "" {
			if op == "Lock" || op == "RLock" {
				held[key] = true
			} else {
				delete(held, key)
			}
			return
		}
		checkLockedExpr(pass, conn, s.X, held)
	case *ast.DeferStmt:
		// defer x.Unlock() keeps the lock held to the end of the function;
		// nothing to do — and nothing to descend into, the deferred call
		// runs after the lock's critical section.
	case *ast.GoStmt:
		// A new goroutine does not inherit the spawner's lock holds.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			walkLocked(pass, conn, lit.Body, map[string]bool{})
		}
	case *ast.SendStmt:
		if len(held) > 0 {
			pass.Reportf(s.Pos(),
				"blocking channel send while %s is held: a stalled receiver parks every goroutine contending for the lock; send after unlocking or use a select with default",
				heldNames(held))
		}
		checkLockedExpr(pass, conn, s.Value, held)
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if send, ok := cc.Comm.(*ast.SendStmt); ok && len(held) > 0 && !hasDefault {
				pass.Reportf(send.Pos(),
					"blocking select send while %s is held (no default clause): send after unlocking or add a default",
					heldNames(held))
			}
			inner := copyHeld(held)
			for _, bodyStmt := range cc.Body {
				walkLockedStmt(pass, conn, bodyStmt, inner)
			}
		}
	case *ast.BlockStmt:
		walkLocked(pass, conn, s, copyHeld(held))
	case *ast.IfStmt:
		if s.Init != nil {
			walkLockedStmt(pass, conn, s.Init, held)
		}
		checkLockedExpr(pass, conn, s.Cond, held)
		walkLocked(pass, conn, s.Body, copyHeld(held))
		if s.Else != nil {
			walkLockedStmt(pass, conn, s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		walkLocked(pass, conn, s.Body, copyHeld(held))
	case *ast.RangeStmt:
		walkLocked(pass, conn, s.Body, copyHeld(held))
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				inner := copyHeld(held)
				for _, bodyStmt := range cc.Body {
					walkLockedStmt(pass, conn, bodyStmt, inner)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				inner := copyHeld(held)
				for _, bodyStmt := range cc.Body {
					walkLockedStmt(pass, conn, bodyStmt, inner)
				}
			}
		}
	case *ast.LabeledStmt:
		walkLockedStmt(pass, conn, s.Stmt, held)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			checkLockedExpr(pass, conn, rhs, held)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			checkLockedExpr(pass, conn, r, held)
		}
	case *ast.DeclStmt:
		checkLockedExpr(pass, conn, s, held)
	}
}

// checkLockedExpr looks inside an expression (or small node) for net.Conn
// method calls and immediately-invoked closures while locks are held.
func checkLockedExpr(pass *Pass, conn *types.Interface, node ast.Node, held map[string]bool) {
	if node == nil || len(held) == 0 {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			// Only an immediately-invoked literal provably runs under the
			// lock; a stored closure may run anywhere.
			return false
		case *ast.CallExpr:
			if lit, ok := ast.Unparen(e.Fun).(*ast.FuncLit); ok {
				walkLocked(pass, conn, lit.Body, copyHeld(held))
				for _, a := range e.Args {
					checkLockedExpr(pass, conn, a, held)
				}
				return false
			}
			if conn != nil {
				if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok && blockingConnMethods[sel.Sel.Name] {
					if tv, ok := pass.TypesInfo.Types[sel.X]; ok && implementsConn(tv.Type, conn) {
						pass.Reportf(e.Pos(),
							"net.Conn %s while %s is held blocks on the peer's TCP window: write after unlocking (encode under the lock, send outside)",
							sel.Sel.Name, heldNames(held))
					}
				}
			}
		}
		return true
	})
}

func implementsConn(t types.Type, conn *types.Interface) bool {
	return types.Implements(t, conn) ||
		types.Implements(types.NewPointer(t), conn)
}

// mutexOp recognizes x.Lock() / x.Unlock() / x.RLock() / x.RUnlock() on
// sync.Mutex, sync.RWMutex or sync.Locker values and returns the rendered
// receiver plus the operation name.
func mutexOp(info *types.Info, expr ast.Expr) (key, op string) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	fn := callee(info, call)
	if fn == nil {
		return "", ""
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", ""
	}
	if !isSyncLockType(recv.Type()) {
		return "", ""
	}
	return types.ExprString(sel.X), name
}

func isSyncLockType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	switch obj.Name() {
	case "Mutex", "RWMutex", "Locker":
		return true
	}
	return false
}

func heldNames(held map[string]bool) string {
	// Deterministic rendering for stable findings.
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
