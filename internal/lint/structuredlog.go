package lint

import (
	"go/ast"
	"go/types"
)

// logOutputFuncs are the log package entry points that write to the
// process-wide default logger.
var logOutputFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fatal": true, "Fatalf": true, "Fatalln": true,
	"Panic": true, "Panicf": true, "Panicln": true,
	"Output": true,
}

// fmtPrintFuncs are fmt functions that write to stdout directly …
var fmtPrintFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
}

// … and fmtFprintFuncs the ones whose first argument picks the writer.
var fmtFprintFuncs = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// StructuredLog returns the structuredlog analyzer.
//
// Invariant guarded: operational events from library packages go through
// the internal/health structured logger (leveled, ring-buffered, served on
// /logs, mirrored to the JSONL sink) — PR 7 migrated the last stray
// log.Printf sites, and this analyzer keeps them from growing back.
// main packages (cmd/*, examples/*) may print: CLI output is their job.
// The logger's own stderr mirror and the crash-dump last resort carry
// //gridlint:allow structuredlog(reason).
func StructuredLog() *Analyzer {
	return &Analyzer{
		Name: "structuredlog",
		Doc:  "forbids ad-hoc log/fmt printing in non-main packages; use the internal/health structured logger",
		Run: func(pass *Pass) error {
			if pass.Pkg.Name() == "main" {
				return nil
			}
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					checkLogCall(pass, call)
					return true
				})
			}
			return nil
		},
	}
}

func checkLogCall(pass *Pass, call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := pass.TypesInfo.Uses[id]; obj != nil && obj.Parent() == types.Universe &&
			(id.Name == "print" || id.Name == "println") {
			pass.Reportf(call.Pos(), "builtin %s writes to stderr: use the internal/health structured logger", id.Name)
			return
		}
	}
	fn := callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "log":
		if logOutputFuncs[fn.Name()] && isPkgFunc(fn, "log", fn.Name()) {
			pass.Reportf(call.Pos(),
				"log.%s writes unstructured text to the process-wide logger: use the internal/health structured logger", fn.Name())
		}
	case "fmt":
		switch {
		case fmtPrintFuncs[fn.Name()] && isPkgFunc(fn, "fmt", fn.Name()):
			pass.Reportf(call.Pos(),
				"fmt.%s writes to stdout from a library package: use the internal/health structured logger", fn.Name())
		case fmtFprintFuncs[fn.Name()] && isPkgFunc(fn, "fmt", fn.Name()) && len(call.Args) > 0:
			if target := stdStream(pass.TypesInfo, call.Args[0]); target != "" {
				pass.Reportf(call.Pos(),
					"fmt.%s to os.%s from a library package: use the internal/health structured logger", fn.Name(), target)
			}
		}
	}
}

// stdStream reports whether expr denotes os.Stderr or os.Stdout, returning
// the variable name or "".
func stdStream(info *types.Info, expr ast.Expr) string {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := info.Uses[sel.Sel]
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Pkg().Path() != "os" {
		return ""
	}
	if v.Name() == "Stderr" || v.Name() == "Stdout" {
		return v.Name()
	}
	return ""
}
