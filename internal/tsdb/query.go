package tsdb

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Expr is one parsed query expression: a bare series name, or a derived
// form fn(series[window]). The window may equally be written after the
// closing paren — rate(m)[5s] and rate(m[5s]) parse identically, so the
// alert grammar and the HTTP grammar share one parser.
type Expr struct {
	Fn       string // "", "rate", "increase", "avg_over_time", "max_over_time"
	Series   string
	WindowUs int64 // 0 = derive from the query step
}

// queryFns are the derived forms ParseExpr accepts.
var queryFns = map[string]bool{
	"rate": true, "increase": true, "avg_over_time": true, "max_over_time": true,
}

// ParseExpr parses a query expression:
//
//	negotiation_session_seconds_count
//	rate(negotiation_session_seconds_count[30s])
//	rate(negotiation_session_seconds_count)[30s]
//	avg_over_time(feedback_score[1m])
func ParseExpr(s string) (Expr, error) {
	var e Expr
	s = strings.TrimSpace(s)
	if s == "" {
		return e, fmt.Errorf("tsdb: empty expression")
	}
	open := strings.Index(s, "(")
	if open < 0 {
		if strings.ContainsAny(s, ")[] ") {
			return e, fmt.Errorf("tsdb: expression %q: stray bracket", s)
		}
		e.Series = s
		return e, nil
	}
	fn := s[:open]
	if !queryFns[fn] {
		return e, fmt.Errorf("tsdb: expression %q: unknown function %q", s, fn)
	}
	close := strings.LastIndex(s, ")")
	if close < open {
		return e, fmt.Errorf("tsdb: expression %q: missing )", s)
	}
	e.Fn = fn
	inner, suffix := s[open+1:close], strings.TrimSpace(s[close+1:])
	var err error
	if inner, e.WindowUs, err = cutWindow(inner); err != nil {
		return e, fmt.Errorf("tsdb: expression %q: %w", s, err)
	}
	if suffix != "" {
		if e.WindowUs != 0 {
			return e, fmt.Errorf("tsdb: expression %q: duplicate window", s)
		}
		var rest string
		if rest, e.WindowUs, err = cutWindow(suffix); err != nil || rest != "" || e.WindowUs == 0 {
			return e, fmt.Errorf("tsdb: expression %q: bad trailing %q", s, suffix)
		}
	}
	e.Series = strings.TrimSpace(inner)
	if e.Series == "" {
		return e, fmt.Errorf("tsdb: expression %q: empty series", s)
	}
	return e, nil
}

// cutWindow splits a trailing [duration] off s, returning the remainder
// and the window in microseconds (0 when absent).
func cutWindow(s string) (string, int64, error) {
	s = strings.TrimSpace(s)
	if !strings.HasSuffix(s, "]") {
		return s, 0, nil
	}
	open := strings.LastIndex(s, "[")
	if open < 0 {
		return s, 0, fmt.Errorf("stray ] in %q", s)
	}
	d, err := time.ParseDuration(s[open+1 : len(s)-1])
	if err != nil || d <= 0 {
		return s, 0, fmt.Errorf("bad window %q", s[open+1:len(s)-1])
	}
	return strings.TrimSpace(s[:open]), d.Microseconds(), nil
}

// String renders the expression canonically.
func (e Expr) String() string {
	if e.Fn == "" {
		return e.Series
	}
	if e.WindowUs > 0 {
		return fmt.Sprintf("%s(%s[%s])", e.Fn, e.Series, time.Duration(e.WindowUs)*time.Microsecond)
	}
	return fmt.Sprintf("%s(%s)", e.Fn, e.Series)
}

// Query evaluates e over [fromUs, toUs] at stepUs resolution.
//
// A bare series returns the stored points thinned to the last sample per
// step bucket. Derived forms evaluate a sliding window ending at each
// step boundary: rate and increase sum reset-aware deltas of the sampled
// cumulative values (a value drop is a counter restart and contributes
// the post-reset value, never a negative delta); avg_over_time and
// max_over_time aggregate the gauge surface, seeing through tier-2
// downsampling via the aggregates' sum/count/max fields.
func (st *Store) Query(e Expr, fromUs, toUs, stepUs int64) []Point {
	if toUs < fromUs {
		return nil
	}
	if stepUs <= 0 {
		stepUs = 1_000_000
	}
	if e.Fn == "" {
		return thin(st.window(e.Series, fromUs-1, toUs), fromUs, stepUs)
	}
	w := e.WindowUs
	if w == 0 {
		w = stepUs
	}
	pts := st.window(e.Series, fromUs-w, toUs)
	var out []Point
	lo, hi := 0, 0
	for t := fromUs; t <= toUs; t += stepUs {
		for hi < len(pts) && pts[hi].tsUs <= t {
			hi++
		}
		for lo < hi && pts[lo].tsUs <= t-w {
			lo++
		}
		if v, ok := evalWindow(e.Fn, pts[lo:hi], w); ok {
			out = append(out, Point{TsUs: t, Value: v})
		}
	}
	return out
}

// Instant evaluates a derived expression's window ending at atUs,
// returning ok=false when the window holds too few points. This is the
// alert engine's entry point.
func (st *Store) Instant(e Expr, atUs int64) (float64, bool) {
	if e.Fn == "" {
		from := atUs - e.WindowUs
		if e.WindowUs == 0 {
			from = math.MinInt64 / 2 // no window: latest point at or before atUs
		}
		pts := st.window(e.Series, from, atUs)
		if len(pts) == 0 {
			return 0, false
		}
		return pts[len(pts)-1].last, true
	}
	if e.WindowUs <= 0 {
		return 0, false
	}
	return evalWindow(e.Fn, st.window(e.Series, atUs-e.WindowUs, atUs), e.WindowUs)
}

func evalWindow(fn string, pts []agg, windowUs int64) (float64, bool) {
	switch fn {
	case "rate", "increase":
		if len(pts) < 2 {
			return 0, false
		}
		inc := 0.0
		for i := 1; i < len(pts); i++ {
			d := pts[i].last - pts[i-1].last
			if d < 0 { // counter reset: the new value is the whole delta
				d = pts[i].last
			}
			inc += d
		}
		if fn == "rate" {
			return inc / (float64(windowUs) / 1e6), true
		}
		return inc, true
	case "avg_over_time":
		var sum float64
		var n int64
		for _, p := range pts {
			sum += p.sumV
			n += p.count
		}
		if n == 0 {
			return 0, false
		}
		return sum / float64(n), true
	case "max_over_time":
		if len(pts) == 0 {
			return 0, false
		}
		m := pts[0].max
		for _, p := range pts[1:] {
			if p.max > m {
				m = p.max
			}
		}
		return m, true
	}
	return 0, false
}

// thin keeps the last point per step bucket.
func thin(pts []agg, fromUs, stepUs int64) []Point {
	var out []Point
	for _, p := range pts {
		bucket := fromUs + ((p.tsUs-fromUs)/stepUs)*stepUs
		pt := Point{TsUs: bucket, Value: p.last}
		if n := len(out); n > 0 && out[n-1].TsUs == bucket {
			out[n-1] = pt
			continue
		}
		out = append(out, pt)
	}
	return out
}
