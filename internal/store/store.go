// Package store is the grid's durability subsystem: an append-only
// write-ahead journal of binary record frames plus periodic snapshots, laid
// out in one data directory so a crashed process recovers by loading the
// latest snapshot and replaying the journal tail.
//
// The journal is a sequence of segment files (`wal-<firstseq>.seg`), each a
// short versioned header followed by record frames — a kind byte, a
// uvarint-length-prefixed body reusing the message package's binary codec,
// and a CRC32C trailer. Appends go through one buffered writer; a commit
// point flushes the buffer in a single write, so the records of one decision
// land on disk together. Segments rotate at a size threshold; snapshots
// (`snap-<seq>.snp`) capture the full application state at a journal
// position, after which older segments and snapshots are pruned.
//
// Recovery never panics on a damaged directory: a truncated tail frame (the
// signature of a crash mid-append) is cut off, a checksum mismatch or an
// unknown segment version ends the log at the last valid record, and any
// segments beyond a damaged one are set aside rather than replayed out of
// order.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"loadbalance/internal/trace"
)

// appendHist samples the journal append latency (1 in 64 appends, so the
// hot path pays two clock reads only on sampled iterations) into the
// store_append_seconds histogram on /metrics.
var appendHist = trace.GetHistogram("store_append_seconds")

// appendSampleMask selects which appends are timed: Appends&mask == 0.
const appendSampleMask = 63

// Errors reported by the package.
var (
	ErrBadConfig = errors.New("store: invalid configuration")
	ErrTruncated = errors.New("store: truncated record")
	ErrCorrupt   = errors.New("store: corrupt record")
	ErrSealed    = errors.New("store: journal sealed")
)

// Options parameterises a store.
type Options struct {
	// SegmentBytes rotates the journal to a new segment file once the
	// current one exceeds this size (default 64 MiB).
	SegmentBytes int64
	// SyncEvery fsyncs the journal after this many appended records; 0
	// syncs only at explicit Sync/Seal/Snapshot/Close points, which is the
	// live loop's policy (a process crash loses nothing that was flushed,
	// and machine-crash durability is bounded by the snapshot cadence).
	SyncEvery int
	// KeepSnapshots is how many snapshots survive pruning (default 2: the
	// latest plus one fallback should the latest turn out damaged).
	KeepSnapshots int
}

// withDefaults fills the option defaults.
func (o Options) withDefaults() (Options, error) {
	if o.SegmentBytes == 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.SegmentBytes < 1024 {
		return o, fmt.Errorf("%w: segment size %d", ErrBadConfig, o.SegmentBytes)
	}
	if o.SyncEvery < 0 {
		return o, fmt.Errorf("%w: sync every %d", ErrBadConfig, o.SyncEvery)
	}
	if o.KeepSnapshots <= 0 {
		o.KeepSnapshots = 2
	}
	return o, nil
}

// Stats is a snapshot of the store's counters, exported at /metrics as the
// store_* series.
type Stats struct {
	Appends      uint64 // records appended
	Commits      uint64 // explicit buffer flushes
	Fsyncs       uint64 // fsync calls on the journal
	Rotations    uint64 // segment rotations
	Snapshots    uint64 // snapshots written this process
	BytesWritten uint64 // journal bytes appended
	LastSeq      uint64 // sequence number of the newest record
	SnapshotSeq  uint64 // journal position of the newest snapshot
	SnapshotTime time.Time
	LastAppend   time.Time // wall time of the newest committed append (zero until the first commit)
	Replayed     int       // records replayed during Open
	Recovered    bool      // Open found prior state
	CleanStart   bool      // prior state ended with a seal record
	TornBytes    int       // bytes cut from the crash-torn tail during Open
}

// Store is one data directory: the live journal plus its snapshots.
type Store struct {
	mu   sync.Mutex
	dir  string
	opts Options
	jw   *journalWriter

	tickBuf          []byte // reused body scratch for AppendTick
	appendsSinceSync int
	appendPending    bool // appends buffered since the last commit point
	stats            Stats
	sealed           bool
	closed           bool
}

// Recovered is what Open found on disk: the newest valid snapshot (if any)
// and the journal records after it, in append order.
type Recovered struct {
	// SnapshotSeq is the journal position of the snapshot (0 = none).
	SnapshotSeq uint64
	// Snapshot is the application state blob at SnapshotSeq.
	Snapshot []byte
	// Records is the journal tail after the snapshot, oldest first.
	Records []Record
	// LastSeq is the newest record's sequence number.
	LastSeq uint64
	// Sealed reports a clean shutdown (the tail ends with a seal record).
	Sealed bool
	// TornBytes counts bytes dropped from a crash-torn tail.
	TornBytes int
}

// Empty reports whether the directory held no usable state.
func (r *Recovered) Empty() bool {
	return r == nil || (r.SnapshotSeq == 0 && len(r.Snapshot) == 0 && len(r.Records) == 0)
}

// Open opens (creating if necessary) a data directory, recovers whatever
// valid state it holds and prepares a fresh journal segment for appending.
// The returned Recovered is never nil.
func Open(dir string, opts Options) (*Store, *Recovered, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("store: data dir: %w", err)
	}
	rec, err := readDir(dir, true)
	if err != nil {
		return nil, nil, err
	}
	jw, err := newJournalWriter(dir, rec.LastSeq+1, opts)
	if err != nil {
		return nil, nil, err
	}
	s := &Store{dir: dir, opts: opts, jw: jw}
	s.stats.LastSeq = rec.LastSeq
	s.stats.SnapshotSeq = rec.SnapshotSeq
	s.stats.Replayed = len(rec.Records)
	s.stats.Recovered = !rec.Empty()
	s.stats.CleanStart = rec.Sealed
	s.stats.TornBytes = rec.TornBytes
	if rec.SnapshotSeq > 0 {
		if t, ok := snapshotTime(dir, rec.SnapshotSeq); ok {
			s.stats.SnapshotTime = t
		}
	}
	return s, rec, nil
}

// ReadDir recovers a data directory read-only: no repair, no new segment —
// the form used by tools and tests inspecting a journal another process owns.
func ReadDir(dir string) (*Recovered, error) {
	return readDir(dir, false)
}

// Dir returns the data directory path.
func (s *Store) Dir() string { return s.dir }

// Append appends one record to the journal buffer. The record is durable
// against process crash once Commit returns, and against machine crash once
// Sync returns.
func (s *Store) Append(r Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendLocked(r)
}

// AppendTick appends one meter-batch checkpoint through a reused encoding
// buffer — the journal's hot path, allocation-free once warm.
func (s *Store) AppendTick(cp TickCheckpoint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tickBuf = AppendTickBody(s.tickBuf[:0], cp)
	return s.appendLocked(Record{Kind: KindTick, Body: s.tickBuf})
}

// AppendBatch appends several records as one commit unit: they are encoded
// back to back and handed to the writer together, then the buffer is
// flushed, so all of them reach the file in one write.
func (s *Store) AppendBatch(recs ...Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range recs {
		if err := s.appendLocked(r); err != nil {
			return err
		}
	}
	return s.commitLocked()
}

// appendLocked encodes and buffers one record.
func (s *Store) appendLocked(r Record) error {
	if s.closed {
		return fmt.Errorf("store: append on closed store")
	}
	if s.sealed {
		return ErrSealed
	}
	var t0 time.Time
	sampled := s.stats.Appends&appendSampleMask == 0
	if sampled {
		t0 = time.Now()
	}
	n, err := s.jw.append(r)
	if err != nil {
		return err
	}
	if sampled {
		appendHist.Observe(time.Since(t0))
	}
	s.appendPending = true
	s.stats.Appends++
	s.stats.BytesWritten += uint64(n)
	s.stats.LastSeq++
	if s.jw.rotated() {
		s.stats.Rotations++
		s.stats.Fsyncs++
	}
	if s.opts.SyncEvery > 0 {
		s.appendsSinceSync++
		if s.appendsSinceSync >= s.opts.SyncEvery {
			return s.syncLocked()
		}
	}
	return nil
}

// AppendFrames applies a contiguous run of already-encoded record frames
// (a replication TailBatch's payload) to the journal: every frame's checksum
// is verified, the run must start exactly one past the journal's newest
// record, and the raw bytes are persisted unchanged, so a replica's journal
// holds byte-identical frames to its primary's. The run is flushed as one
// commit unit. It returns the decoded records it applied (their bodies alias
// frames — the one decode pass serves persistence and replay both) and
// whether the run ended with a seal record (the primary shut down cleanly;
// the replica's journal is sealed too and refuses further appends).
func (s *Store) AppendFrames(firstSeq uint64, frames []byte) (recs []Record, sealed bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, fmt.Errorf("store: append on closed store")
	}
	if s.sealed {
		return nil, false, ErrSealed
	}
	if firstSeq != s.stats.LastSeq+1 {
		return nil, false, fmt.Errorf("%w: frames start at %d, journal ends at %d", ErrCorrupt, firstSeq, s.stats.LastSeq)
	}
	for len(frames) > 0 {
		r, size, err := decodeFrame(frames)
		if err != nil {
			return recs, false, fmt.Errorf("store: replicated frame %d: %w", firstSeq+uint64(len(recs)), err)
		}
		if err := s.jw.appendRaw(frames[:size]); err != nil {
			return recs, false, err
		}
		s.stats.Appends++
		s.stats.BytesWritten += uint64(size)
		s.stats.LastSeq++
		if s.jw.rotated() {
			s.stats.Rotations++
			s.stats.Fsyncs++
		}
		recs = append(recs, r)
		if r.Kind == KindSeal {
			sealed = true
		}
		frames = frames[size:]
	}
	if sealed {
		s.sealed = true
		return recs, true, s.syncLocked()
	}
	return recs, false, s.commitLocked()
}

// InstallSnapshot bootstraps an empty store from a snapshot shipped by a
// remote primary: the blob is published at journal position seq and the
// journal restarts at seq+1, exactly as if this directory had written the
// snapshot itself and pruned everything under it. It refuses to run on a
// store that already holds records or prior state — a follower that has
// anything must catch up through AppendFrames, never skip ahead.
func (s *Store) InstallSnapshot(seq uint64, blob []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: snapshot on closed store")
	}
	if s.sealed {
		return ErrSealed
	}
	if s.stats.LastSeq != 0 || s.stats.Recovered || s.stats.Appends > 0 {
		return fmt.Errorf("%w: snapshot install on a non-empty store (last seq %d)", ErrBadConfig, s.stats.LastSeq)
	}
	if seq == 0 {
		return fmt.Errorf("%w: snapshot at position 0", ErrBadConfig)
	}
	if err := writeSnapshot(s.dir, seq, blob); err != nil {
		return err
	}
	// Restart the journal at seq+1: retire the empty opening segment (its
	// name claims sequence 1, which this journal will never hold) and open
	// the segment the next replicated frame belongs in.
	oldPath := s.jw.path()
	if err := s.jw.close(); err != nil {
		return err
	}
	_ = os.Remove(oldPath)
	jw, err := newJournalWriter(s.dir, seq+1, s.opts)
	if err != nil {
		return err
	}
	s.jw = jw
	s.stats.Snapshots++
	s.stats.LastSeq = seq
	s.stats.SnapshotSeq = seq
	s.stats.SnapshotTime = time.Now()
	return nil
}

// Commit flushes the append buffer to the journal file: everything appended
// so far survives a process crash.
func (s *Store) Commit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.commitLocked()
}

func (s *Store) commitLocked() error {
	if s.closed {
		return nil
	}
	if err := s.jw.flush(); err != nil {
		return err
	}
	s.stats.Commits++
	if s.appendPending {
		s.stats.LastAppend = time.Now()
		s.appendPending = false
	}
	return nil
}

// Sync flushes and fsyncs the journal: everything appended so far survives a
// machine crash.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncLocked()
}

func (s *Store) syncLocked() error {
	if s.closed {
		return nil
	}
	if err := s.jw.sync(); err != nil {
		return err
	}
	s.stats.Commits++
	s.stats.Fsyncs++
	s.appendsSinceSync = 0
	if s.appendPending {
		s.stats.LastAppend = time.Now()
		s.appendPending = false
	}
	return nil
}

// Snapshot records the full application state at the journal's current
// position, fsyncing the journal first so the snapshot never claims state
// the log has not made durable, then prunes superseded snapshots and
// segments.
func (s *Store) Snapshot(blob []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: snapshot on closed store")
	}
	if err := s.syncLocked(); err != nil {
		return err
	}
	seq := s.stats.LastSeq
	if err := writeSnapshot(s.dir, seq, blob); err != nil {
		return err
	}
	s.stats.Snapshots++
	s.stats.SnapshotSeq = seq
	s.stats.SnapshotTime = time.Now()
	s.pruneLocked()
	return nil
}

// pruneLocked removes snapshots beyond the keep count and journal segments
// every record of which is covered by the oldest kept snapshot.
func (s *Store) pruneLocked() {
	oldestKept := pruneSnapshots(s.dir, s.opts.KeepSnapshots)
	pruneSegments(s.dir, oldestKept, s.jw.path())
}

// Seal appends the clean-shutdown marker and makes it durable. Further
// appends fail with ErrSealed.
func (s *Store) Seal() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sealed || s.closed {
		return nil
	}
	if err := s.appendLocked(sealRecord()); err != nil {
		return err
	}
	s.sealed = true
	return s.syncLocked()
}

// Close flushes, fsyncs and closes the journal without sealing it (a
// non-sealed close is indistinguishable from a crash to the next Open, which
// is exactly what crash tests rely on).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	err := s.syncLocked()
	s.closed = true
	if cerr := s.jw.close(); err == nil {
		err = cerr
	}
	return err
}

// Stats returns the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// segmentGlob lists the journal segments in the directory, sorted by name
// (which sorts by first sequence number: the names zero-pad to 16 hex
// digits).
func segmentGlob(dir string) []string {
	names, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	return names
}
