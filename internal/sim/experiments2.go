package sim

import (
	"fmt"
	"math"
	"time"

	"loadbalance/internal/core"
	"loadbalance/internal/customeragent"
	"loadbalance/internal/market"
	"loadbalance/internal/resource"
	"loadbalance/internal/units"
	"loadbalance/internal/utilityagent"
	"loadbalance/internal/world"
)

// e11Window carries one negotiation window's fleet model.
type e11Window struct {
	window    units.Interval
	specs     []core.CustomerSpec
	predicted units.Energy
}

// E11DayPeakShaving runs dynamic load management across a whole day: the
// Utility Agent inspects every 2-hour window of the Figure 1 demand curve,
// negotiates wherever the predicted demand exceeds the normal capacity, and
// the resulting cut-downs flatten the curve — the purpose Figure 1
// motivates ("smoothen the total peak load").
func E11DayPeakShaving(n int, seed int64) (*Table, error) {
	data, err := e11Fleet(n, seed)
	if err != nil {
		return nil, err
	}

	// Constant capacity: 5% above the day's mean window demand, so only the
	// morning/evening peaks overload.
	var sum units.Energy
	for _, wd := range data {
		sum = sum.Add(wd.predicted)
	}
	capacity := sum.Scale(1.05 / float64(len(data)))

	t := &Table{
		Name:    fmt.Sprintf("E11: day-long peak shaving, %d households", n),
		Columns: []string{"window", "predicted_kwh", "capacity_kwh", "negotiated", "after_kwh", "rounds"},
	}
	params := core.PaperParams()
	peakBefore, peakAfter := 0.0, 0.0
	for _, wd := range data {
		before := wd.predicted.KWhs()
		after := before
		negotiated := "no"
		rounds := 0
		ratio := (before - capacity.KWhs()) / capacity.KWhs()
		if ratio > params.AllowedOveruseRatio {
			s := core.Scenario{
				SessionID:    "day-" + wd.window.Start.Format("15:04"),
				Window:       wd.window,
				NormalUse:    capacity,
				Method:       utilityagent.MethodRewardTable,
				Params:       params,
				InitialSlope: 42.5,
				Customers:    wd.specs,
				Timeout:      60 * time.Second,
			}
			calibrateRewards(&s)
			res, err := core.Run(s)
			if err != nil {
				return nil, err
			}
			negotiated = "yes"
			rounds = res.Rounds
			after = capacity.KWhs() + res.FinalOveruseKWh
		}
		peakBefore = math.Max(peakBefore, before)
		peakAfter = math.Max(peakAfter, after)
		t.AddRowF(wd.window.Start.Format("15:04"), before, capacity.KWhs(), negotiated, after, rounds)
	}
	t.Notes = fmt.Sprintf("peak %0.1f → %0.1f kWh per window (%.1f%% shaved)",
		peakBefore, peakAfter, 100*(peakBefore-peakAfter)/peakBefore)
	return t, nil
}

// e11Fleet builds per-window customer models for the whole day.
func e11Fleet(n int, seed int64) ([]e11Window, error) {
	pop, err := world.NewPopulation(world.PopulationConfig{N: n, Seed: seed, EVShare: 0.2})
	if err != nil {
		return nil, err
	}
	day := units.Interval{
		Start: time.Date(1998, 1, 20, 0, 0, 0, 0, time.UTC),
		End:   time.Date(1998, 1, 21, 0, 0, 0, 0, time.UTC),
	}
	windows, err := day.Split(12)
	if err != nil {
		return nil, err
	}
	levels := paperLevels()
	out := make([]e11Window, 0, len(windows))
	for _, w := range windows {
		wd := e11Window{window: w}
		samples := resource.DefaultSampleCount(w)
		for _, h := range pop.Households {
			rep, err := resource.BuildReport(h, w, pop.Weather, samples)
			if err != nil {
				return nil, err
			}
			prefs, err := customeragent.FromReport(rep, levels, 0.2)
			if err != nil {
				return nil, err
			}
			wd.specs = append(wd.specs, core.CustomerSpec{
				Name:      h.ID,
				Predicted: rep.TotalUse,
				Allowed:   rep.TotalUse,
				Prefs:     prefs,
				Strategy:  customeragent.StrategyGreedy,
			})
			wd.predicted = wd.predicted.Add(rep.TotalUse)
		}
		out = append(out, wd)
	}
	return out, nil
}

// paperLevels mirrors core's cut-down grid.
func paperLevels() []float64 {
	cds := units.StandardCutDowns()
	out := make([]float64, len(cds))
	for i, cd := range cds {
		out[i] = cd.Float()
	}
	return out
}

// calibrateRewards rescales the reward table to the fleet's requirements,
// the same calibration core.PopulationScenario applies.
func calibrateRewards(s *core.Scenario) {
	var req []float64
	for _, c := range s.Customers {
		if r := c.Prefs.RequiredFor(0.4); !math.IsInf(r, 1) {
			req = append(req, r)
		}
	}
	if len(req) == 0 {
		return
	}
	// Median without sorting the caller's data.
	sorted := append([]float64(nil), req...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	median := sorted[len(sorted)/2]
	if median <= 0 {
		return
	}
	s.InitialSlope = 0.5 * median / 0.4
	s.Params.MaxRewardSlope = 3 * median / 0.4
	s.Params.Epsilon = 0.02 * median
}

// E12MarketComparison compares the reward-table protocol against the
// computational-market baseline of Ygge & Akkermans ([12]; the strategy the
// paper's Discussion says is "currently being explored"). Both mechanisms
// face the same fleet, the same flexibility and the same capacity.
func E12MarketComparison(n int, seed int64) (*Table, error) {
	s, err := core.PopulationScenario(core.PopulationConfig{
		N: n, Seed: seed, Margin: 0.2, Method: utilityagent.MethodRewardTable,
	})
	if err != nil {
		return nil, err
	}
	res, err := core.Run(s)
	if err != nil {
		return nil, err
	}

	const basePrice = 1.0
	demands := make([]market.Demand, 0, len(s.Customers))
	for _, c := range s.Customers {
		d, err := demandFromPreferences(c.Name, c.Prefs, basePrice)
		if err != nil {
			return nil, err
		}
		demands = append(demands, d)
	}
	clearing, err := market.Auctioneer{}.Clear(demands, s.NormalUse)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Name:    fmt.Sprintf("E12 (refs [1],[12]): reward tables vs computational market, %d customers", n),
		Columns: []string{"mechanism", "rounds_or_iters", "messages", "final_overuse_ratio", "shed_kwh", "transfer"},
		Notes: "transfer: rewards the utility pays (tables) vs scarcity premium customers pay (market price " +
			fmt.Sprintf("%.3f/kWh)", clearing.Price),
	}
	shedRT := res.InitialOveruseKWh - res.FinalOveruseKWh
	t.AddRowF("reward_table", res.Rounds, res.Bus.Sent, res.FinalOveruseRatio, shedRT, res.TotalReward)
	premium := (clearing.Price - basePrice) * clearing.TotalDemand.KWhs()
	if premium < 0 {
		premium = 0
	}
	t.AddRowF("market", clearing.Iterations, 2*n /* one bid + one allocation per customer */, clearing.OveruseRatio(), clearing.Shed.KWhs(), premium)
	return t, nil
}

// demandFromPreferences converts a cut-down-reward table into a step demand
// function: each grid step from level l1 to l2 is a tranche of
// (l2−l1)·ExpectedUse kWh whose per-kWh value is the base price plus the
// marginal required reward over that tranche.
func demandFromPreferences(name string, prefs customeragent.Preferences, basePrice float64) (market.Demand, error) {
	const essentialValue = 1e6
	use := prefs.ExpectedUse.KWhs()
	if use <= 0 {
		return market.Demand{}, fmt.Errorf("market: customer %q has no expected use", name)
	}
	var sheddable []market.DemandSegment
	prevLevel, prevReq := 0.0, 0.0
	for _, l := range prefs.Levels {
		if l == 0 {
			continue
		}
		r := prefs.RequiredFor(l)
		if math.IsInf(r, 1) {
			break
		}
		energy := (l - prevLevel) * use
		if energy <= 0 {
			continue
		}
		marginal := (r - prevReq) / energy
		sheddable = append(sheddable, market.DemandSegment{
			Energy: units.Energy(energy),
			Value:  marginal,
		})
		prevLevel, prevReq = l, r
	}
	return market.FromComfortCosts(name, prefs.ExpectedUse, sheddable, basePrice, essentialValue)
}
