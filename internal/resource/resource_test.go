package resource

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"loadbalance/internal/units"
	"loadbalance/internal/world"
)

func eveningPeak() units.Interval {
	start := time.Date(1998, 1, 20, 17, 0, 0, 0, time.UTC)
	return units.Interval{Start: start, End: start.Add(2 * time.Hour)}
}

func testHousehold(t *testing.T) *world.Household {
	t.Helper()
	h, err := world.NewHousehold("h1", 3, true, 42)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestAgentsFor(t *testing.T) {
	h := testHousehold(t)
	agents, err := AgentsFor(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(agents) != len(h.Devices) {
		t.Fatalf("agents = %d, want %d", len(agents), len(h.Devices))
	}
	empty := &world.Household{ID: "empty"}
	if _, err := AgentsFor(empty); !errors.Is(err, ErrNoDevices) {
		t.Fatalf("empty household error = %v", err)
	}
}

func TestReportSavable(t *testing.T) {
	h := testHousehold(t)
	wm := world.NewWeatherModel(42)
	agents, err := AgentsFor(h)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range agents {
		s, err := a.ReportSavable(eveningPeak(), wm, 8)
		if err != nil {
			t.Fatalf("%s: %v", a.Device().Kind, err)
		}
		if s.Energy < 0 {
			t.Fatalf("%s: negative savable energy", s.Device)
		}
		if s.CostPerKWh <= 0 {
			t.Fatalf("%s: non-positive comfort cost", s.Device)
		}
	}
	if _, err := agents[0].ReportSavable(eveningPeak(), wm, 0); !errors.Is(err, ErrBadSamples) {
		t.Fatal("zero samples should fail")
	}
}

func TestBuildReportSortedAndBounded(t *testing.T) {
	h := testHousehold(t)
	wm := world.NewWeatherModel(42)
	rep, err := BuildReport(h, eveningPeak(), wm, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalUse <= 0 {
		t.Fatal("total use should be positive during the evening peak")
	}
	var savable units.Energy
	for i, s := range rep.Savables {
		savable = savable.Add(s.Energy)
		if i > 0 && s.CostPerKWh < rep.Savables[i-1].CostPerKWh {
			t.Fatal("savables must be sorted by comfort cost")
		}
	}
	if savable.KWhs() > rep.TotalUse.KWhs()+1e-9 {
		t.Fatalf("savable %.3f exceeds total %.3f", savable.KWhs(), rep.TotalUse.KWhs())
	}
	mc := rep.MaxCutDown()
	if mc <= 0 || mc > 1 {
		t.Fatalf("max cut-down = %v", mc)
	}
	if _, err := BuildReport(h, eveningPeak(), wm, 0); !errors.Is(err, ErrBadSamples) {
		t.Fatal("zero samples should fail")
	}
}

func TestRequiredRewardsShape(t *testing.T) {
	h := testHousehold(t)
	wm := world.NewWeatherModel(42)
	rep, err := BuildReport(h, eveningPeak(), wm, 8)
	if err != nil {
		t.Fatal(err)
	}
	levels := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	req, err := rep.RequiredRewards(levels, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if req[0] != 0 {
		t.Fatalf("required(0) = %v, want 0", req[0])
	}
	// Monotone non-decreasing in the cut-down and convex in spirit: the
	// marginal cost of deeper cuts cannot decrease (greedy cheapest-first).
	prev := 0.0
	prevMarginal := 0.0
	for i := 1; i < len(levels); i++ {
		cur := req[levels[i]]
		if math.IsInf(cur, 1) {
			continue // infeasible tail
		}
		if cur < prev {
			t.Fatalf("required(%v)=%v < required(%v)=%v", levels[i], cur, levels[i-1], prev)
		}
		marginal := cur - prev
		if marginal+1e-9 < prevMarginal {
			t.Fatalf("marginal cost decreased at level %v: %v < %v", levels[i], marginal, prevMarginal)
		}
		prev, prevMarginal = cur, marginal
	}
	// Deep cut-downs beyond the flexible share must be infeasible.
	mc := rep.MaxCutDown()
	for _, l := range levels {
		if l > mc+1e-9 && !math.IsInf(req[l], 1) {
			t.Fatalf("level %v beyond max %v should be infeasible, got %v", l, mc, req[l])
		}
		if l <= mc && math.IsInf(req[l], 1) {
			t.Fatalf("level %v within max %v should be feasible", l, mc)
		}
	}
}

func TestRequiredRewardsValidation(t *testing.T) {
	rep := Report{TotalUse: 10, Savables: []Savable{{Device: world.KindWaterHeater, Energy: 5, CostPerKWh: 1}}}
	if _, err := rep.RequiredRewards(nil, 0); !errors.Is(err, ErrBadLevels) {
		t.Fatal("empty levels should fail")
	}
	if _, err := rep.RequiredRewards([]float64{0.2, 0.1}, 0); !errors.Is(err, ErrBadLevels) {
		t.Fatal("unordered levels should fail")
	}
	if _, err := rep.RequiredRewards([]float64{0.1, 1.5}, 0); !errors.Is(err, ErrBadLevels) {
		t.Fatal("level above 1 should fail")
	}
	if _, err := rep.RequiredRewards([]float64{0.1}, -0.5); err == nil {
		t.Fatal("negative margin should fail")
	}
}

func TestRequiredRewardsHandComputed(t *testing.T) {
	// Total use 10 kWh; two devices: 4 kWh sheddable at cost 1, 2 kWh at 3.
	rep := Report{
		TotalUse: 10,
		Savables: []Savable{
			{Device: world.KindWaterHeater, Energy: 4, CostPerKWh: 1},
			{Device: world.KindLighting, Energy: 2, CostPerKWh: 3},
		},
	}
	req, err := rep.RequiredRewards([]float64{0, 0.2, 0.4, 0.5, 0.6, 0.7}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 0.2 → shed 2 kWh from the cheap device: cost 2.
	if !units.NearlyEqual(req[0.2], 2, 1e-9) {
		t.Fatalf("required(0.2) = %v, want 2", req[0.2])
	}
	// 0.4 → shed 4 kWh, all cheap: cost 4.
	if !units.NearlyEqual(req[0.4], 4, 1e-9) {
		t.Fatalf("required(0.4) = %v, want 4", req[0.4])
	}
	// 0.5 → 4 cheap + 1 expensive: 4 + 3 = 7.
	if !units.NearlyEqual(req[0.5], 7, 1e-9) {
		t.Fatalf("required(0.5) = %v, want 7", req[0.5])
	}
	// 0.6 → 4 + 2×3 = 10.
	if !units.NearlyEqual(req[0.6], 10, 1e-9) {
		t.Fatalf("required(0.6) = %v, want 10", req[0.6])
	}
	// 0.7 → needs 7 kWh, only 6 savable: infeasible.
	if !math.IsInf(req[0.7], 1) {
		t.Fatalf("required(0.7) = %v, want +Inf", req[0.7])
	}

	// Margin scales feasible requirements.
	req, err = rep.RequiredRewards([]float64{0.4}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !units.NearlyEqual(req[0.4], 5, 1e-9) {
		t.Fatalf("required(0.4) with margin = %v, want 5", req[0.4])
	}
}

func TestMaxCutDownEdgeCases(t *testing.T) {
	if got := (Report{}).MaxCutDown(); got != 0 {
		t.Fatalf("empty report max = %v", got)
	}
	over := Report{TotalUse: 1, Savables: []Savable{{Energy: 5, CostPerKWh: 1}}}
	if got := over.MaxCutDown(); got != 1 {
		t.Fatalf("over-flexible report max = %v, want clamped 1", got)
	}
}

func TestDefaultSampleCount(t *testing.T) {
	if got := DefaultSampleCount(eveningPeak()); got != 8 {
		t.Fatalf("2h window samples = %d, want 8", got)
	}
	short := units.Interval{Start: eveningPeak().Start, End: eveningPeak().Start.Add(10 * time.Minute)}
	if got := DefaultSampleCount(short); got != 4 {
		t.Fatalf("short window samples = %d, want minimum 4", got)
	}
}

// Property: required rewards are monotone in the level and scale linearly
// with the margin, for arbitrary two-device reports.
func TestRequiredRewardsProperties(t *testing.T) {
	f := func(e1Raw, e2Raw, c1Raw, c2Raw uint8) bool {
		rep := Report{
			TotalUse: 10,
			Savables: []Savable{
				{Device: world.KindWaterHeater, Energy: units.Energy(float64(e1Raw%60) / 10), CostPerKWh: 0.1 + float64(c1Raw%40)/10},
				{Device: world.KindLighting, Energy: units.Energy(float64(e2Raw%60) / 10), CostPerKWh: 0.1 + float64(c2Raw%40)/10},
			},
		}
		// Savables must be cost-sorted for the greedy walk.
		if rep.Savables[0].CostPerKWh > rep.Savables[1].CostPerKWh {
			rep.Savables[0], rep.Savables[1] = rep.Savables[1], rep.Savables[0]
		}
		levels := []float64{0.1, 0.2, 0.3, 0.4}
		base, err := rep.RequiredRewards(levels, 0)
		if err != nil {
			return false
		}
		scaled, err := rep.RequiredRewards(levels, 1)
		if err != nil {
			return false
		}
		prev := -1.0
		for _, l := range levels {
			if math.IsInf(base[l], 1) {
				if !math.IsInf(scaled[l], 1) {
					return false
				}
				continue
			}
			if base[l] < prev {
				return false
			}
			if !units.NearlyEqual(scaled[l], 2*base[l], 1e-9) {
				return false
			}
			prev = base[l]
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
