// Package sim is the experiment harness: it runs the scenarios that
// regenerate every figure of the paper (and the parameter studies its
// Discussion calls for) and renders the results as aligned text or CSV.
// cmd/experiments and the repository's benchmarks are thin wrappers around
// the E1…E10 functions in this package; EXPERIMENTS.md records their output.
package sim

import (
	"fmt"
	"strings"
)

// Table is a simple rectangular result set with named columns.
type Table struct {
	Name    string
	Columns []string
	Rows    [][]string
	Notes   string
}

// AddRow appends a row, padding or truncating to the column count.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowF appends a row of formatted values; float64 renders with %.4g,
// everything else with %v.
func (t *Table) AddRowF(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.4g", v))
		case string:
			row = append(row, v)
		default:
			row = append(row, fmt.Sprintf("%v", v))
		}
	}
	t.AddRow(row...)
}

// CSV renders the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// String renders the table aligned for terminals, with name and notes.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Name != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Name)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}
