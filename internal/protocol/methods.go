package protocol

import (
	"fmt"

	"loadbalance/internal/message"
	"loadbalance/internal/units"
)

// This file implements the two other announcement methods of Section 3.2:
// the one-shot offer (3.2.1) and the iterated request for bids (3.2.2). The
// prototype in the paper uses reward tables; these methods exist so the
// "evaluation of the methods" comparison (3.2.4, experiment E5) can be run
// rather than discussed.

// OfferSession is the one-round take-it-or-leave-it method. All customers
// receive identical terms (Swedish law requires equal treatment; Section
// 3.2.1 and 6.1).
type OfferSession struct {
	id        string
	terms     message.OfferTerms
	loads     map[string]CustomerLoad
	normalUse units.Energy
	replies   map[string]bool
	closed    bool
}

// OfferOutcome summarises the single round.
type OfferOutcome struct {
	Accepted     int
	Declined     int
	Silent       int
	OveruseKWh   float64
	OveruseRatio float64
	// DiscountCost is the revenue the utility forgoes by selling at the low
	// price to accepting customers — the offer method's counterpart to the
	// reward-table method's total reward paid.
	DiscountCost float64
}

// NewOfferSession validates the terms and opens the session.
func NewOfferSession(id string, terms message.OfferTerms, loads map[string]CustomerLoad, normalUse units.Energy) (*OfferSession, error) {
	if id == "" {
		return nil, fmt.Errorf("%w: empty session id", ErrBadParams)
	}
	if err := terms.Validate(); err != nil {
		return nil, err
	}
	if len(loads) == 0 {
		return nil, fmt.Errorf("%w: no customers", ErrBadParams)
	}
	ls := make(map[string]CustomerLoad, len(loads))
	for n, l := range loads {
		l.CutDown = 0
		l.Responded = false
		ls[n] = l
	}
	return &OfferSession{
		id:        id,
		terms:     terms,
		loads:     ls,
		normalUse: normalUse,
		replies:   make(map[string]bool),
	}, nil
}

// Announce returns the offer terms.
func (s *OfferSession) Announce() (message.OfferTerms, error) {
	if s.closed {
		return message.OfferTerms{}, ErrSessionClosed
	}
	return s.terms, nil
}

// RecordReply stores a customer's yes/no. Duplicate replies overwrite
// (a customer may change its mind until the round closes).
func (s *OfferSession) RecordReply(customer string, r message.OfferReply) error {
	if s.closed {
		return ErrSessionClosed
	}
	if _, ok := s.loads[customer]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownCustomer, customer)
	}
	if err := r.Validate(); err != nil {
		return err
	}
	s.replies[customer] = r.Accept
	return nil
}

// ResponseCount returns the number of replies received.
func (s *OfferSession) ResponseCount() int { return len(s.replies) }

// Close evaluates the offer's effect: accepting customers cap their usage at
// XMax × allowance; everyone else keeps their predicted usage.
func (s *OfferSession) Close() (OfferOutcome, error) {
	if s.closed {
		return OfferOutcome{}, ErrSessionClosed
	}
	s.closed = true
	var out OfferOutcome
	total := 0.0
	// Sorted-name summation, like PredictedOveruse: float addition is not
	// associative, so accumulating total and DiscountCost in map-iteration
	// order would make two runs of the same scenario disagree in the last
	// ulp.
	for _, name := range sortedLoadNames(s.loads) {
		load := s.loads[name]
		accept, replied := s.replies[name]
		switch {
		case !replied:
			out.Silent++
			total += load.Predicted.KWhs()
		case !accept:
			out.Declined++
			total += load.Predicted.KWhs()
		default:
			out.Accepted++
			cap := load.Allowed.KWhs() * s.terms.XMax
			use := load.Predicted.KWhs()
			if cap < use {
				use = cap
			}
			total += use
			out.DiscountCost += (s.terms.NormalPrice - s.terms.LowPrice) * use
		}
	}
	out.OveruseKWh = total - s.normalUse.KWhs()
	if s.normalUse > 0 {
		out.OveruseRatio = out.OveruseKWh / s.normalUse.KWhs()
	}
	return out, nil
}

// RFBParams parameterises the request-for-bids method.
type RFBParams struct {
	LowPrice    float64
	NormalPrice float64
	HighPrice   float64
	// AllowedOveruseRatio mirrors the reward-table parameter.
	AllowedOveruseRatio float64
	// MaxRounds bounds the negotiation; 0 means the default.
	MaxRounds int
}

// Validate reports whether the parameters are usable.
func (p RFBParams) Validate() error {
	if !(p.LowPrice <= p.NormalPrice && p.NormalPrice <= p.HighPrice) || p.LowPrice < 0 {
		return fmt.Errorf("%w: prices must satisfy 0 <= low <= normal <= high", ErrBadParams)
	}
	if p.AllowedOveruseRatio < 0 {
		return fmt.Errorf("%w: allowed overuse %v", ErrBadParams, p.AllowedOveruseRatio)
	}
	if p.MaxRounds < 0 {
		return fmt.Errorf("%w: max rounds %d", ErrBadParams, p.MaxRounds)
	}
	return nil
}

func (p RFBParams) maxRounds() int {
	if p.MaxRounds <= 0 {
		return defaultMaxRounds
	}
	return p.MaxRounds
}

// RFBOutcome classifies a request-for-bids round.
type RFBOutcome int

// RFB outcomes.
const (
	// RFBContinue means the UA requests another round of bids.
	RFBContinue RFBOutcome = iota + 1
	// RFBConverged means predicted overuse is acceptable.
	RFBConverged
	// RFBStalled means no customer improved its bid ("stand still" across
	// the board), so further rounds cannot help.
	RFBStalled
	// RFBMaxRounds means the round bound was hit.
	RFBMaxRounds
)

// Terminal reports whether the outcome ends the session.
func (o RFBOutcome) Terminal() bool { return o != RFBContinue }

// String renders the outcome.
func (o RFBOutcome) String() string {
	switch o {
	case RFBContinue:
		return "continue"
	case RFBConverged:
		return "converged"
	case RFBStalled:
		return "stalled"
	case RFBMaxRounds:
		return "max rounds reached"
	default:
		return fmt.Sprintf("rfb_outcome(%d)", int(o))
	}
}

// RFBRound records one completed request-for-bids round.
type RFBRound struct {
	Round        int
	Bids         map[string]float64 // yMin per customer
	Responses    int
	Improved     int // customers that stepped forward this round
	OveruseKWh   float64
	OveruseRatio float64
	Outcome      RFBOutcome
}

// RFBSession is the UA state machine for the request-for-bids method. Each
// customer bids the energy it "really needs" (yMin); across rounds a bid may
// stand still or improve (decrease), per the monotonic concession reading.
type RFBSession struct {
	id        string
	window    units.Interval
	params    RFBParams
	loads     map[string]CustomerLoad
	normalUse units.Energy

	round   int
	yMin    map[string]float64 // committed from previous rounds
	bids    map[string]float64 // this round
	history []RFBRound
	closed  bool
	outcome RFBOutcome
}

// NewRFBSession opens a request-for-bids negotiation.
func NewRFBSession(id string, window units.Interval, p RFBParams, loads map[string]CustomerLoad, normalUse units.Energy) (*RFBSession, error) {
	if id == "" {
		return nil, fmt.Errorf("%w: empty session id", ErrBadParams)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(loads) == 0 {
		return nil, fmt.Errorf("%w: no customers", ErrBadParams)
	}
	ls := make(map[string]CustomerLoad, len(loads))
	yMin := make(map[string]float64, len(loads))
	for n, l := range loads {
		l.Responded = false
		ls[n] = l
		yMin[n] = l.Predicted.KWhs() // before bidding, need = prediction
	}
	return &RFBSession{
		id:        id,
		window:    window,
		params:    p,
		loads:     ls,
		normalUse: normalUse,
		round:     1,
		yMin:      yMin,
		bids:      make(map[string]float64),
	}, nil
}

// Round returns the current round (1-based).
func (s *RFBSession) Round() int { return s.round }

// Closed reports whether the session terminated.
func (s *RFBSession) Closed() bool { return s.closed }

// FinalOutcome returns the terminal outcome (zero before termination).
func (s *RFBSession) FinalOutcome() RFBOutcome { return s.outcome }

// History returns completed round records.
func (s *RFBSession) History() []RFBRound {
	return append([]RFBRound(nil), s.history...)
}

// Announce returns the request message for the current round.
func (s *RFBSession) Announce() (message.BidRequest, error) {
	if s.closed {
		return message.BidRequest{}, ErrSessionClosed
	}
	return message.BidRequest{
		Window:      message.FromInterval(s.window),
		Round:       s.round,
		LowPrice:    s.params.LowPrice,
		NormalPrice: s.params.NormalPrice,
		HighPrice:   s.params.HighPrice,
	}, nil
}

// RecordBid stores a customer's yMin bid. Monotonicity: a bid may not exceed
// the customer's previously committed yMin ("the same bid again ('stand
// still') or ... a (slightly) better bid ('one step forward')").
func (s *RFBSession) RecordBid(customer string, bid message.EnergyBid) error {
	if s.closed {
		return ErrSessionClosed
	}
	prev, ok := s.yMin[customer]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownCustomer, customer)
	}
	if bid.Round != s.round {
		return fmt.Errorf("%w: got %d, want %d", ErrWrongRound, bid.Round, s.round)
	}
	if err := bid.Validate(); err != nil {
		return err
	}
	if bid.YMinKWh > prev+1e-12 {
		return fmt.Errorf("%w: %q bid %v kWh after %v kWh", ErrNonMonotonicBid, customer, bid.YMinKWh, prev)
	}
	s.bids[customer] = bid.YMinKWh
	return nil
}

// ResponseCount returns the number of bids this round.
func (s *RFBSession) ResponseCount() int { return len(s.bids) }

// CloseRound merges bids, recomputes the balance and applies termination.
func (s *RFBSession) CloseRound() (RFBRound, error) {
	if s.closed {
		return RFBRound{}, ErrSessionClosed
	}
	rec := RFBRound{Round: s.round, Bids: s.bids, Responses: len(s.bids)}
	for customer, y := range s.bids {
		if y < s.yMin[customer]-1e-12 {
			rec.Improved++
		}
		s.yMin[customer] = y
		load := s.loads[customer]
		load.Responded = true
		s.loads[customer] = load
	}
	s.bids = make(map[string]float64)

	total := 0.0
	// Sorted-name summation keeps the overuse bitwise reproducible across
	// runs (float addition is order-sensitive, map iteration is not).
	for _, name := range sortedLoadNames(s.loads) {
		load := s.loads[name]
		use := load.Predicted.KWhs()
		if y := s.yMin[name]; load.Responded && y < use {
			use = y
		}
		total += use
	}
	rec.OveruseKWh = total - s.normalUse.KWhs()
	if s.normalUse > 0 {
		rec.OveruseRatio = rec.OveruseKWh / s.normalUse.KWhs()
	}

	switch {
	case rec.OveruseRatio <= s.params.AllowedOveruseRatio:
		rec.Outcome = RFBConverged
	case rec.Responses > 0 && rec.Improved == 0 && s.round > 1:
		rec.Outcome = RFBStalled
	case s.round >= s.params.maxRounds():
		rec.Outcome = RFBMaxRounds
	default:
		rec.Outcome = RFBContinue
	}

	s.history = append(s.history, rec)
	if rec.Outcome.Terminal() {
		s.closed = true
		s.outcome = rec.Outcome
	} else {
		s.round++
	}
	return rec, nil
}

// CommittedYMin returns the customer's currently committed need.
func (s *RFBSession) CommittedYMin(customer string) (float64, bool) {
	y, ok := s.yMin[customer]
	return y, ok
}
