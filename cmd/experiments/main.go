// Command experiments regenerates every figure of the paper's evaluation
// (and the parameter studies its Discussion calls for) as aligned text on
// stdout and CSV files under -out.
//
// Usage:
//
//	experiments                 # run everything into ./results
//	experiments -exp e5 -n 100  # one experiment
//	experiments -exp e7 -sizes 10,100,1000
//	experiments -exp e11c -cluster-sizes 1000,10000,100000 -shards 16,64,256
//	experiments -exp e14 -n 64 -ticks 20  # live grid with spike injection
//	experiments -exp e15 -n 32            # distributed negotiation over TCP
//	experiments -exp e16 -n 32 -ticks 14  # crash/recover a durable live grid
//	experiments -exp e17 -n 32 -ticks 14  # kill a replicated primary, fail over to its hot standby
//	experiments -data-dir ./runs          # resumable: completed ids skip
//
// With -data-dir each completed experiment is journaled; re-running the same
// command resumes where the previous invocation stopped instead of
// recomputing finished experiments.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"loadbalance/internal/health"
	"loadbalance/internal/sim"
	"loadbalance/internal/store"
	"loadbalance/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "all", "experiment id: e1..e17, e11c (cluster scale) or all")
		out      = fs.String("out", "results", "output directory for CSV files")
		n        = fs.Int("n", 100, "population size (e1, e5)")
		seed     = fs.Int64("seed", 1, "random seed")
		sizes    = fs.String("sizes", "10,50,200,1000", "fleet sizes for e7")
		betas    = fs.String("betas", "0.5,1,1.85,3,5,8", "beta values for e6")
		runs     = fs.Int("runs", 10, "randomized runs for e8")
		csizes   = fs.String("cluster-sizes", "1000,5000", "fleet sizes for e11c (the full sweep is 1000,10000,100000)")
		shards   = fs.String("shards", "4,16,64", "concentrator counts for e11c")
		ticks    = fs.Int("ticks", 15, "live ticks for e14, e16 and e17")
		dataDir  = fs.String("data-dir", "", "journal completed experiments under this directory; re-running skips them (e16 also keeps its grid journals there)")
		metrics  = fs.String("metrics", "", "optional HTTP listen address answering /metrics with per-experiment latency histograms while the run is in flight")
		logLevel = fs.String("log-level", "info", "structured log level: debug | info | warn | error | off")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	lvl, err := health.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	logger, err := health.Init(health.Config{Proc: "experiments", MinLevel: lvl, StderrLevel: health.Warn})
	if err != nil {
		return err
	}
	defer logger.Close()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	if *metrics != "" {
		ln, err := net.Listen("tcp", *metrics)
		if err != nil {
			return err
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			trace.WriteMetrics(w)
			health.WriteLogMetrics(w, health.Default())
		})
		mux.HandleFunc("/logs", health.LogHandler(health.Default()))
		srv := &http.Server{Handler: mux}
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
		fmt.Printf("serving /metrics on %s\n", ln.Addr())
	}

	sizeList, err := parseInts(*sizes)
	if err != nil {
		return fmt.Errorf("-sizes: %w", err)
	}
	betaList, err := parseFloats(*betas)
	if err != nil {
		return fmt.Errorf("-betas: %w", err)
	}
	clusterSizes, err := parseInts(*csizes)
	if err != nil {
		return fmt.Errorf("-cluster-sizes: %w", err)
	}
	shardList, err := parseInts(*shards)
	if err != nil {
		return fmt.Errorf("-shards: %w", err)
	}

	type experiment struct {
		id  string
		run func() (*sim.Table, error)
	}
	experiments := []experiment{
		{"e1", func() (*sim.Table, error) {
			prof, tab, err := sim.E1DemandCurve(*n, *seed)
			if err != nil {
				return nil, err
			}
			// The full curve goes to its own CSV; the summary table returns.
			if err := os.WriteFile(filepath.Join(*out, "e1_demand_curve.csv"), []byte(prof.CSV()), 0o644); err != nil {
				return nil, err
			}
			fmt.Println(prof.ASCII(60))
			return tab, nil
		}},
		{"e2", sim.E2InitialPhase},
		{"e3", sim.E3FinalPhase},
		{"e4", sim.E4CustomerDecision},
		{"e5", func() (*sim.Table, error) { return sim.E5MethodComparison(*n, *seed) }},
		{"e6", func() (*sim.Table, error) { return sim.E6BetaSweep(betaList) }},
		{"e7", func() (*sim.Table, error) { return sim.E7Scalability(sizeList, *seed) }},
		{"e8", func() (*sim.Table, error) { return sim.E8ProtocolProperties(*runs, *seed) }},
		{"e9", func() (*sim.Table, error) {
			return sim.E9FailureInjection([]float64{0, 0.05, 0.1, 0.2}, []int{0, 2, 4})
		}},
		{"e10", sim.E10RewardTableSeries},
		{"e11", func() (*sim.Table, error) { return sim.E11DayPeakShaving(min(*n, 40), *seed) }},
		{"e12", func() (*sim.Table, error) { return sim.E12MarketComparison(*n, *seed) }},
		{"e13", func() (*sim.Table, error) { return sim.E13ForecastDrivenNegotiation(min(*n, 40), *seed) }},
		{"e11c", func() (*sim.Table, error) { return sim.E11ClusterScale(clusterSizes, shardList, *seed) }},
		{"e14", func() (*sim.Table, error) { return sim.E14LiveGrid(min(*n, 64), 8, *ticks, *seed) }},
		{"e15", func() (*sim.Table, error) { return sim.E15DistributedNegotiation(min(*n, 64), 4, *seed) }},
		{"e16", func() (*sim.Table, error) {
			gridDir := ""
			if *dataDir != "" {
				gridDir = filepath.Join(*dataDir, "e16")
			}
			tab, rep, err := sim.E16CrashRecovery(min(*n, 48), 8, *ticks, *seed, gridDir)
			if err != nil {
				return nil, err
			}
			// The recovery latency and verdict go to a result JSON next to
			// the CSV.
			data, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				return nil, err
			}
			file := filepath.Join(*out, "e16_recovery.json")
			if err := os.WriteFile(file, data, 0o644); err != nil {
				return nil, err
			}
			fmt.Printf("wrote %s\n", file)
			return tab, nil
		}},
		{"e17", func() (*sim.Table, error) {
			gridDir := ""
			if *dataDir != "" {
				gridDir = filepath.Join(*dataDir, "e17")
			}
			tab, rep, err := sim.E17Failover(min(*n, 48), 8, *ticks, *seed, gridDir)
			if err != nil {
				return nil, err
			}
			// The availability gap and continuity verdict go to a result
			// JSON next to the CSV.
			data, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				return nil, err
			}
			file := filepath.Join(*out, "e17_failover.json")
			if err := os.WriteFile(file, data, 0o644); err != nil {
				return nil, err
			}
			fmt.Printf("wrote %s\n", file)
			return tab, nil
		}},
	}

	// With a data dir, completed experiment ids are journaled and skipped on
	// re-runs, so a long -exp all invocation is resumable. The fingerprint
	// covers the parameter flags: an id only skips when it completed under
	// the parameters of this invocation.
	fingerprint := fmt.Sprintf("n=%d seed=%d ticks=%d runs=%d sizes=%s betas=%s cluster-sizes=%s shards=%s",
		*n, *seed, *ticks, *runs, *sizes, *betas, *csizes, *shards)
	var journal *store.Store
	done := make(map[string]string) // experiment id -> fingerprint it completed under
	if *dataDir != "" {
		var rec *store.Recovered
		var err error
		journal, rec, err = store.Open(*dataDir, store.Options{})
		if err != nil {
			return err
		}
		defer journal.Close()
		for _, r := range rec.Records {
			if r.Kind != store.KindSession {
				continue
			}
			if o, err := store.DecodeSession(r); err == nil {
				done[o.SessionID] = o.Config
			}
		}
	}

	ran := 0
	for _, e := range experiments {
		if *exp != "all" && *exp != e.id {
			continue
		}
		ran++
		if fp, ok := done[e.id]; ok && fp == fingerprint {
			fmt.Printf("%s already completed in %s with these parameters, skipping (delete the directory to re-run)\n\n", e.id, *dataDir)
			continue
		}
		t0 := time.Now()
		tab, err := e.run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		elapsed := time.Since(t0)
		trace.GetHistogramL("experiment_duration_seconds", "exp", e.id).Observe(elapsed)
		fmt.Println(tab.String())
		file := filepath.Join(*out, e.id+".csv")
		if err := os.WriteFile(file, []byte(tab.CSV()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%s took %v)\n\n", file, e.id, elapsed.Round(time.Millisecond))
		if journal != nil {
			rec, err := store.NewSessionRecord(store.SessionOutcome{SessionID: e.id, Outcome: "completed", Config: fingerprint})
			if err != nil {
				return err
			}
			if err := journal.Append(rec); err != nil {
				return err
			}
			if err := journal.Sync(); err != nil {
				return err
			}
		}
	}
	if ran == 0 {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
