package cluster

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"loadbalance/internal/agent"
	"loadbalance/internal/bus"
	"loadbalance/internal/message"
	"loadbalance/internal/protocol"
	"loadbalance/internal/trace"
)

// ConcentratorConfig parameterises one Concentrator Agent.
type ConcentratorConfig struct {
	// Name is the concentrator's bus name on both tiers.
	Name string
	// SessionID identifies the negotiation the concentrator relays.
	SessionID string
	// Members models the shard's customers the way a Utility Agent would
	// (predicted and allowed use per name). May be empty.
	Members map[string]protocol.CustomerLoad
	// MinResponses is the shard's "acceptable number of bids" before the
	// concentrator answers upward without waiting for stragglers; 0 means
	// all members.
	MinResponses int
	// RoundTimeout answers upward even without quorum, so lossy or silent
	// shards cannot stall the root session; 0 disables the timeout.
	RoundTimeout time.Duration
}

// Concentrator fronts one shard of Customer Agents in a hierarchical
// negotiation. Downward it plays the Utility Agent's role — it fans announced
// reward tables out to its members, collects their cut-down bids and
// distributes their awards. Upward it plays a Customer Agent's role — it
// answers each announcement with a single aggregated bid: the effective
// cut-down at which the shard's capped predicted use equals
// (1−bid)·allowed_use. Because predicted use, savable load and allowance are
// additive across customers, the root session's balance prediction over K
// concentrators equals the flat prediction over all N customers, preserving
// the paper's convergence conditions (1) and (2) end to end.
//
// Two runtimes host a concentrator (one per bus tier), so its state is
// mutex-guarded: the upward-facing runtime handles root traffic, the
// downward-facing one handles member bids, and shard round timeouts fire on
// timer goroutines.
type Concentrator struct {
	cfg     ConcentratorConfig
	members []string // sorted member names; immutable after construction

	mu       sync.Mutex
	upRT     *agent.Runtime // registered on the parent (root) bus
	downRT   *agent.Runtime // registered on the shard's bus
	upstream string         // root agent name, learned from the announcement

	table     protocol.Table // last announced table (for award lookups)
	round     int            // current root round being relayed
	replied   bool           // upward bid already sent for this round
	heard     map[string]bool
	lastBids  map[string]float64
	responded map[string]bool
	lastUp    float64 // last upward bid (monotonic floor)
	ended     bool
	awarded   bool

	// tctx is the trace context of the last relayed announcement; timer
	// goroutines (shard round timeouts) attribute their upward bids to it
	// because no inbound envelope carries a context for them.
	tctx trace.Context
}

// NewConcentrator validates the configuration and constructs the agent.
func NewConcentrator(cfg ConcentratorConfig) (*Concentrator, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("%w: empty concentrator name", ErrBadConfig)
	}
	if cfg.SessionID == "" {
		return nil, fmt.Errorf("%w: empty session id", ErrBadConfig)
	}
	if cfg.MinResponses < 0 || cfg.MinResponses > len(cfg.Members) {
		return nil, fmt.Errorf("%w: min responses %d for %d members", ErrBadConfig, cfg.MinResponses, len(cfg.Members))
	}
	members := make([]string, 0, len(cfg.Members))
	for n := range cfg.Members {
		if n == cfg.Name {
			return nil, fmt.Errorf("%w: member %q shadows the concentrator", ErrBadConfig, n)
		}
		members = append(members, n)
	}
	sort.Strings(members) // deterministic fan-out order, sorted once
	return &Concentrator{
		cfg:       cfg,
		members:   members,
		heard:     make(map[string]bool),
		lastBids:  make(map[string]float64),
		responded: make(map[string]bool),
	}, nil
}

// Start registers the concentrator on both tiers: parent is the bus the root
// Utility Agent announces on, shard is the bus its members answer on. The
// two must be distinct buses (each registers the concentrator under its
// name), but several concentrators may share one downward bus — the TCP
// deployment bridges every remote customer onto a single bus — so member
// fan-out is always by targeted send, never broadcast.
func (c *Concentrator) Start(parent, shard bus.Bus, inboxSize int) error {
	up, err := agent.Start(c.cfg.Name, parent, upSide{c}, inboxSize)
	if err != nil {
		return err
	}
	down, err := agent.Start(c.cfg.Name, shard, downSide{c}, inboxSize)
	if err != nil {
		up.Stop()
		return err
	}
	// Both handles are stored before Start returns; callers start the root
	// Utility Agent only afterwards, so no announcement can race them.
	c.mu.Lock()
	c.upRT, c.downRT = up, down
	c.mu.Unlock()
	return nil
}

// Stop tears down both runtimes.
func (c *Concentrator) Stop() {
	c.mu.Lock()
	up, down := c.upRT, c.downRT
	c.mu.Unlock()
	if up != nil {
		up.Stop()
	}
	if down != nil {
		down.Stop()
	}
}

// Errors returns handler errors from both runtimes.
func (c *Concentrator) Errors() []error {
	c.mu.Lock()
	up, down := c.upRT, c.downRT
	c.mu.Unlock()
	var out []error
	if up != nil {
		out = append(out, up.Errors()...)
	}
	if down != nil {
		out = append(out, down.Errors()...)
	}
	return out
}

// WaitUp blocks until the root-facing runtime exits — its bus closed the
// inbox, e.g. the TCP connection to the root died. Worker processes use it
// as a liveness signal so a vanished root cannot strand them.
func (c *Concentrator) WaitUp() {
	c.mu.Lock()
	up := c.upRT
	c.mu.Unlock()
	if up != nil {
		up.Wait()
	}
}

// Done reports whether the concentrator has seen the session end and, when an
// aggregate award was due, distributed the member awards.
func (c *Concentrator) Done() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ended
}

// MemberBids returns each member's current cut-down commitment.
func (c *Concentrator) MemberBids() map[string]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]float64, len(c.lastBids))
	for n, b := range c.lastBids {
		out[n] = b
	}
	return out
}

// RespondedMembers returns the members that have bid at least once, in no
// particular order. The engine's teardown drain polls this every
// millisecond, so it stays a plain snapshot — no sorting under the mutex.
func (c *Concentrator) RespondedMembers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.responded))
	for n := range c.responded {
		out = append(out, n)
	}
	return out
}

// upSide is the root-facing half: it receives announcements, awards and the
// session end from the parent tier.
type upSide struct{ c *Concentrator }

func (h upSide) OnStart(rt *agent.Runtime) error { return nil }

func (h upSide) OnMessage(rt *agent.Runtime, env message.Envelope) error {
	c := h.c
	if env.Session != c.cfg.SessionID {
		return nil
	}
	p, err := env.Decode()
	if err != nil {
		return err
	}
	switch m := p.(type) {
	case message.RewardTable:
		return c.relayAnnouncement(rt.TraceCtx(), env.From, m)
	case message.Award:
		return c.distributeAwards(rt.TraceCtx(), m)
	case message.SessionEnd:
		return c.forwardSessionEnd(rt.TraceCtx(), m)
	default:
		return nil
	}
}

// downSide is the shard-facing half: it receives member bids.
type downSide struct{ c *Concentrator }

func (h downSide) OnStart(rt *agent.Runtime) error { return nil }

func (h downSide) OnMessage(rt *agent.Runtime, env message.Envelope) error {
	c := h.c
	if env.Session != c.cfg.SessionID {
		return nil
	}
	p, err := env.Decode()
	if err != nil {
		return err
	}
	bid, ok := p.(message.CutDownBid)
	if !ok {
		return nil
	}
	return c.recordMemberBid(rt.TraceCtx(), env.From, bid)
}

// relayAnnouncement opens a new shard round: it notes the table, fans it out
// to every member and arms the shard timeout. An empty shard answers upward
// immediately.
func (c *Concentrator) relayAnnouncement(tc trace.Context, from string, m message.RewardTable) error {
	c.mu.Lock()
	if c.ended {
		c.mu.Unlock()
		return nil
	}
	c.upstream = from
	c.table = protocol.TableFromMessage(m)
	c.round = m.Round
	c.replied = false
	c.heard = make(map[string]bool, len(c.cfg.Members))
	c.tctx = tc
	down := c.downRT
	c.mu.Unlock()
	members := c.members

	for _, n := range members {
		// A failed targeted send (member gone, inbox full) is equivalent to
		// a lost announcement: the quorum/timeout rules absorb it.
		_ = down.SendCtx(tc, n, c.cfg.SessionID, m)
	}
	if c.cfg.RoundTimeout > 0 {
		round := m.Round
		time.AfterFunc(c.cfg.RoundTimeout, func() { //gridlint:allow walltime(round liveness timeout; closes a round on silence, never changes a collected bid)
			_ = c.closeShardRound(round)
		})
	}
	return c.maybeReplyUpward(tc, m.Round, false)
}

// recordMemberBid merges one member's bid for the current round and answers
// upward once the acceptable number of bids is in.
func (c *Concentrator) recordMemberBid(tc trace.Context, from string, bid message.CutDownBid) error {
	c.mu.Lock()
	if c.ended {
		c.mu.Unlock()
		return nil
	}
	if _, ok := c.cfg.Members[from]; !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: bid from %q outside shard", protocol.ErrUnknownCustomer, from)
	}
	if bid.Round != c.round || c.replied {
		// Stale bid, or a straggler arriving after the aggregate went
		// upward: the member's last commitment stands, exactly as the flat
		// Utility Agent discards bids for a closed round. Folding it in
		// here would pay the member for a cut-down the root never counted.
		c.mu.Unlock()
		return nil
	}
	// Monotonic concession: a member may stand still or step forward, never
	// regress. A regressing bid keeps the previous commitment.
	if bid.CutDown > c.lastBids[from] {
		c.lastBids[from] = bid.CutDown
	}
	c.heard[from] = true
	c.responded[from] = true
	round := c.round
	c.mu.Unlock()
	return c.maybeReplyUpward(tc, round, false)
}

// closeShardRound is the timeout path: answer upward with whatever bids are
// in (the "acceptable number of bids" rule of Section 3.2.2).
func (c *Concentrator) closeShardRound(round int) error {
	c.mu.Lock()
	tc := c.tctx
	c.mu.Unlock()
	return c.maybeReplyUpward(tc, round, true)
}

// maybeReplyUpward sends the aggregated bid for the round when quorum is
// reached (or force is set) and it has not been sent yet.
func (c *Concentrator) maybeReplyUpward(tc trace.Context, round int, force bool) error {
	c.mu.Lock()
	if c.ended || c.replied || round != c.round {
		c.mu.Unlock()
		return nil
	}
	need := c.cfg.MinResponses
	if need <= 0 {
		need = len(c.cfg.Members)
	}
	if !force && len(c.heard) < need {
		c.mu.Unlock()
		return nil
	}
	cut := c.effectiveCutDownLocked()
	if cut < c.lastUp {
		cut = c.lastUp // float guard: the aggregate never regresses
	}
	c.lastUp = cut
	c.replied = true
	up, upstream := c.upRT, c.upstream
	c.mu.Unlock()
	return up.SendCtx(tc, upstream, c.cfg.SessionID, message.CutDownBid{Round: round, CutDown: cut})
}

// effectiveCutDownLocked computes the shard's aggregated bid: the cut-down x
// at which (1−x)·allowed_use equals the shard's capped predicted use under
// the members' current commitments. The root's use_with_cutdown then
// reproduces the shard's true aggregate use exactly, so hierarchical and flat
// balance predictions coincide.
func (c *Concentrator) effectiveCutDownLocked() float64 {
	// Sum over the sorted member list, not the map: float addition is not
	// associative, so map-iteration order would make the aggregated bid —
	// and everything the root derives from it — vary between runs.
	var use, allowed float64
	for _, name := range c.members {
		l := c.cfg.Members[name]
		l.CutDown = c.lastBids[name]
		use += protocol.UseWithCutDown(l).KWhs()
		allowed += l.Allowed.KWhs()
	}
	if allowed <= 0 {
		return 0
	}
	x := 1 - use/allowed
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	return x
}

// distributeAwards converts the root's aggregate award into per-member
// awards: each member that ever responded is paid the final table's reward at
// its own committed cut-down, exactly as the flat Utility Agent would.
func (c *Concentrator) distributeAwards(tc trace.Context, m message.Award) error {
	c.mu.Lock()
	if c.awarded {
		c.mu.Unlock()
		return nil
	}
	c.awarded = true
	table := c.table
	down := c.downRT
	type memberAward struct {
		name  string
		award message.Award
	}
	awards := make([]memberAward, 0, len(c.responded))
	for _, n := range c.members {
		if !c.responded[n] {
			continue
		}
		cut := c.lastBids[n]
		reward, ok := table.RewardFor(cut)
		if !ok {
			reward = table.InterpolatedReward(cut)
		}
		awards = append(awards, memberAward{n, message.Award{Round: m.Round, CutDown: cut, Reward: reward}})
	}
	c.mu.Unlock()

	var firstErr error
	for _, a := range awards {
		if err := down.SendCtx(tc, a.name, c.cfg.SessionID, a.award); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// forwardSessionEnd relays the termination downward and closes the shard.
func (c *Concentrator) forwardSessionEnd(tc trace.Context, m message.SessionEnd) error {
	c.mu.Lock()
	if c.ended {
		c.mu.Unlock()
		return nil
	}
	c.ended = true
	down := c.downRT
	c.mu.Unlock()
	var firstErr error
	for _, n := range c.members {
		if err := down.SendCtx(tc, n, c.cfg.SessionID, m); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

var (
	_ agent.Handler = upSide{}
	_ agent.Handler = downSide{}
)
