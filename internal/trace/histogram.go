package trace

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Log-linear bucket scheme: each power-of-two range of nanoseconds is
// split into 4 linear sub-buckets (the top two mantissa bits), giving a
// worst-case relative error of 12.5% per bucket. The tracked range is
// [2^minShift, 2^(maxShift+1)) ns — 1.024 µs to ~137 s — with one
// underflow bucket below and one overflow (+Inf) bucket above.
const (
	minShift   = 10 // 2^10 ns ≈ 1 µs
	maxShift   = 36 // 2^36 ns ≈ 69 s
	subBuckets = 4
	nBuckets   = (maxShift-minShift+1)*subBuckets + 2 // + underflow + overflow
)

// bucketIndex maps a duration in nanoseconds to its bucket.
func bucketIndex(ns uint64) int {
	if ns < 1<<minShift {
		return 0
	}
	m := uint(bits.Len64(ns)) - 1 // 2^m <= ns < 2^(m+1)
	if m > maxShift {
		return nBuckets - 1
	}
	minor := int(ns>>(m-2)) & (subBuckets - 1)
	return 1 + int(m-minShift)*subBuckets + minor
}

// bucketUpperNs returns the exclusive upper bound of bucket i in ns, or 0
// for the overflow bucket (rendered as +Inf).
func bucketUpperNs(i int) uint64 {
	if i == 0 {
		return 1 << minShift
	}
	if i == nBuckets-1 {
		return 0
	}
	i--
	m := uint(i/subBuckets) + minShift
	minor := uint64(i % subBuckets)
	return 1<<m + (minor+1)<<(m-2)
}

// Histogram is a fixed-bucket log-linear latency histogram. Observe is
// lock-free: one bucket increment plus two running-total adds.
type Histogram struct {
	family string // metric family, e.g. "grid_tick_seconds"
	labels string // rendered label pairs without braces, e.g. `exp="e14"`

	counts [nBuckets]atomic.Uint64
	sumNs  atomic.Uint64
	count  atomic.Uint64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil || d < 0 {
		return
	}
	ns := uint64(d)
	h.counts[bucketIndex(ns)].Add(1)
	h.sumNs.Add(ns)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// snapshot copies the bucket counts coherently enough for rendering
// (individual loads are atomic; cross-bucket skew of in-flight Observes
// is acceptable for monitoring output).
func (h *Histogram) snapshot() (counts [nBuckets]uint64, sumNs, n uint64) {
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts, h.sumNs.Load(), h.count.Load()
}

// Quantile returns the q-quantile (0 < q < 1) in seconds, interpolated
// linearly within the winning bucket. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	counts, _, n := h.snapshot()
	if n == 0 {
		return 0
	}
	rank := q * float64(n)
	var cum uint64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		ub := bucketUpperNs(i)
		if ub == 0 { // overflow bucket: report its lower bound
			return float64(uint64(2)<<maxShift) / 1e9
		}
		var lb uint64
		if i > 0 {
			lb = bucketUpperNs(i - 1)
		}
		frac := (rank - float64(prev)) / float64(c)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return (float64(lb) + frac*float64(ub-lb)) / 1e9
	}
	return float64(uint64(2)<<maxShift) / 1e9
}

// writeTo renders one histogram instance in Prometheus exposition format.
// Only buckets with occupancy are printed (cumulative values stay
// correct); +Inf always is.
func (h *Histogram) writeTo(w io.Writer) {
	counts, sumNs, n := h.snapshot()
	lbl := func(extra string) string {
		switch {
		case h.labels == "" && extra == "":
			return ""
		case h.labels == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + h.labels + "}"
		default:
			return "{" + h.labels + "," + extra + "}"
		}
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if c == 0 {
			continue
		}
		ub := bucketUpperNs(i)
		if ub == 0 {
			continue // overflow counts land in the +Inf line below
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", h.family, lbl(fmt.Sprintf("le=%q", formatSeconds(ub))), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", h.family, lbl(`le="+Inf"`), n)
	fmt.Fprintf(w, "%s_sum%s %g\n", h.family, lbl(""), float64(sumNs)/1e9)
	fmt.Fprintf(w, "%s_count%s %d\n", h.family, lbl(""), n)
}

// formatSeconds renders a nanosecond bound as seconds with enough
// precision to round-trip the bucket boundary.
func formatSeconds(ns uint64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.9f", float64(ns)/1e9), "0"), ".")
}

// Registry holds named histograms and renders them all on /metrics.
type Registry struct {
	mu    sync.Mutex
	hs    map[string]*Histogram // keyed family + "\xff" + labels
	order []string
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{hs: make(map[string]*Histogram)} }

// Histogram returns the histogram for family (creating it on first use).
func (r *Registry) Histogram(family string) *Histogram {
	return r.HistogramL(family, "", "")
}

// HistogramL returns the histogram for family with one label pair
// (creating it on first use). Family names follow Prometheus duration
// conventions and should end in "_seconds".
func (r *Registry) HistogramL(family, labelKey, labelVal string) *Histogram {
	labels := ""
	if labelKey != "" {
		labels = fmt.Sprintf("%s=%q", labelKey, labelVal)
	}
	key := family + "\xff" + labels
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hs[key]; ok {
		return h
	}
	h := &Histogram{family: family, labels: labels}
	r.hs[key] = h
	r.order = append(r.order, key)
	return h
}

// Lookup returns the unlabeled histogram for family, or nil if it has
// never been created — unlike Histogram it does not instantiate, so
// read-side callers (alert rules, score sources) can probe without
// adding empty families to /metrics.
func (r *Registry) Lookup(family string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hs[family+"\xff"]
}

// WriteMetrics renders every histogram in Prometheus exposition format:
// a histogram family (cumulative _bucket/_sum/_count series) followed by
// p50/p95/p99 gauges per instance. Families are sorted for stable output.
func (r *Registry) WriteMetrics(w io.Writer) {
	r.mu.Lock()
	keys := append([]string(nil), r.order...)
	hs := make([]*Histogram, len(keys))
	for i, k := range keys {
		hs[i] = r.hs[k]
	}
	r.mu.Unlock()

	sort.Sort(byKey{keys, hs})
	lastFamily := ""
	for _, h := range hs {
		if h.family != lastFamily {
			fmt.Fprintf(w, "# TYPE %s histogram\n", h.family)
			lastFamily = h.family
		}
		h.writeTo(w)
	}
	for _, q := range []struct {
		suffix string
		q      float64
	}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}} {
		lastFamily = ""
		for _, h := range hs {
			if h.Count() == 0 {
				continue
			}
			name := h.family + "_" + q.suffix
			if h.family != lastFamily {
				fmt.Fprintf(w, "# TYPE %s gauge\n", name)
				lastFamily = h.family
			}
			lbl := ""
			if h.labels != "" {
				lbl = "{" + h.labels + "}"
			}
			fmt.Fprintf(w, "%s%s %g\n", name, lbl, h.Quantile(q.q))
		}
	}
}

// HistogramBucket is one cumulative bucket in a snapshot: the rendered
// le= bound ("+Inf" for overflow) and the cumulative count at it.
type HistogramBucket struct {
	LE  string
	Cum uint64
}

// HistogramSnapshot is a point-in-time copy of one histogram instance in
// the shape the exposition renders: occupied buckets (plus +Inf)
// cumulative, totals in seconds, and the served percentiles. It exists
// for scrapers (the tsdb store) that need the series values without
// parsing exposition text.
type HistogramSnapshot struct {
	Family        string
	Labels        string // rendered label pairs without braces, "" if none
	Buckets       []HistogramBucket
	SumSeconds    float64
	Count         uint64
	P50, P95, P99 float64
}

// Snapshots copies every histogram in the registry, sorted the same way
// WriteMetrics renders them.
func (r *Registry) Snapshots() []HistogramSnapshot {
	r.mu.Lock()
	keys := append([]string(nil), r.order...)
	hs := make([]*Histogram, len(keys))
	for i, k := range keys {
		hs[i] = r.hs[k]
	}
	r.mu.Unlock()

	sort.Sort(byKey{keys, hs})
	out := make([]HistogramSnapshot, 0, len(hs))
	for _, h := range hs {
		counts, sumNs, n := h.snapshot()
		s := HistogramSnapshot{
			Family:     h.family,
			Labels:     h.labels,
			SumSeconds: float64(sumNs) / 1e9,
			Count:      n,
		}
		var cum uint64
		for i, c := range counts {
			cum += c
			if c == 0 {
				continue
			}
			if ub := bucketUpperNs(i); ub != 0 {
				s.Buckets = append(s.Buckets, HistogramBucket{LE: formatSeconds(ub), Cum: cum})
			}
		}
		s.Buckets = append(s.Buckets, HistogramBucket{LE: "+Inf", Cum: n})
		if n > 0 {
			s.P50, s.P95, s.P99 = h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
		}
		out = append(out, s)
	}
	return out
}

type byKey struct {
	keys []string
	hs   []*Histogram
}

func (b byKey) Len() int           { return len(b.keys) }
func (b byKey) Less(i, j int) bool { return b.keys[i] < b.keys[j] }
func (b byKey) Swap(i, j int) {
	b.keys[i], b.keys[j] = b.keys[j], b.keys[i]
	b.hs[i], b.hs[j] = b.hs[j], b.hs[i]
}

// defaultRegistry backs the package-level helpers; gridd and the
// experiment runner share it so one /metrics endpoint sees everything.
var defaultRegistry = NewRegistry()

// DefaultRegistry returns the process-wide histogram registry.
func DefaultRegistry() *Registry { return defaultRegistry }

// GetHistogram returns a histogram from the default registry.
func GetHistogram(family string) *Histogram { return defaultRegistry.Histogram(family) }

// LookupHistogram returns the default registry's histogram for family
// without creating it; nil if it does not exist.
func LookupHistogram(family string) *Histogram { return defaultRegistry.Lookup(family) }

// GetHistogramL returns a labeled histogram from the default registry.
func GetHistogramL(family, labelKey, labelVal string) *Histogram {
	return defaultRegistry.HistogramL(family, labelKey, labelVal)
}

// WriteMetrics renders the default registry.
func WriteMetrics(w io.Writer) { defaultRegistry.WriteMetrics(w) }
