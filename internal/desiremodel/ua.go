// Package desiremodel contains executable DESIRE compositions of the
// paper's process-abstraction figures: the Utility Agent's own process
// control (Figure 2) and cooperation management (Figure 3), and the
// Customer Agent's own process control (Figure 4) and cooperation
// management (Figure 5).
//
// These compositions are the *declarative specification* of the agents:
// components, information links and task control exactly as the figures
// draw them, with knowledge bases expressing the decision knowledge in
// rules. The operational agents (internal/utilityagent,
// internal/customeragent) implement the same decisions in plain Go for the
// hot path; the tests in this package check the two stay consistent — the
// compositional-verification discipline of the companion ICMAS'98 paper.
package desiremodel

import (
	"fmt"

	"loadbalance/internal/desire"
	"loadbalance/internal/kb"
)

// Method constants mirrored as kb constants of sort "method".
const (
	MethodOffer       = "offer"
	MethodRFB         = "request_for_bids"
	MethodRewardTable = "reward_table"
)

// Acceptance strategy constants of sort "acceptance".
const (
	AcceptCountYes      = "count_yes"
	AcceptMonotonicBids = "accept_monotonic_bids"
	AcceptMonotonicYMin = "accept_monotonic_ymin"
)

// uaOntology declares the UA model's information types.
func uaOntology() (*kb.Ontology, error) {
	o := kb.NewOntology()
	steps := []error{
		o.DeclareSort("method", kb.SortAny),
		o.DeclareSort("acceptance", kb.SortAny),
		o.DeclareSort("verdict", kb.SortAny),
		o.DeclareConst(MethodOffer, "method"),
		o.DeclareConst(MethodRFB, "method"),
		o.DeclareConst(MethodRewardTable, "method"),
		o.DeclareConst(AcceptCountYes, "acceptance"),
		o.DeclareConst(AcceptMonotonicBids, "acceptance"),
		o.DeclareConst(AcceptMonotonicYMin, "acceptance"),
		o.DeclareConst("successful", "verdict"),
		o.DeclareConst("needs_review", "verdict"),

		// Situation inputs.
		o.DeclarePred("lead_time_minutes", kb.SortNumber),
		o.DeclarePred("overuse_ratio", kb.SortNumber),
		o.DeclarePred("customer_count", kb.SortNumber),
		// Decisions.
		o.DeclarePred("chosen_method", "method"),
		o.DeclarePred("bid_acceptance", "acceptance"),
		// Evaluation inputs and output.
		o.DeclarePred("outcome_converged", kb.SortNumber), // 1 or 0
		o.DeclarePred("rounds_used", kb.SortNumber),
		o.DeclarePred("process_verdict", "verdict"),
	}
	for _, err := range steps {
		if err != nil {
			return nil, fmt.Errorf("desiremodel: ua ontology: %w", err)
		}
	}
	return o, nil
}

// strategyRules encodes "determine announcement method": the Section 3.2.4
// evaluation as knowledge. Thresholds mirror internal/utilityagent: the
// offer when time is short (< 15 minutes) or the peak small (≤ 0.1 at the
// paper's 70% response prior); request-for-bids with a long horizon (≥ 360
// minutes) and a small fleet (≤ 50); reward tables otherwise.
func strategyRules() (*kb.Base, error) {
	return kb.NewBase("determine_announcement_method",
		kb.Rule{
			Name: "offer_when_time_short",
			If: []kb.Literal{
				kb.Pos(kb.A("lead_time_minutes", kb.V("T"))),
			},
			Guards: []kb.Guard{{Op: kb.OpLt, Left: kb.V("T"), Right: kb.N(15)}},
			Then:   []kb.Atom{kb.A("chosen_method", kb.C(MethodOffer))},
		},
		kb.Rule{
			Name: "offer_when_peak_small",
			If: []kb.Literal{
				kb.Pos(kb.A("lead_time_minutes", kb.V("T"))),
				kb.Pos(kb.A("overuse_ratio", kb.V("O"))),
			},
			Guards: []kb.Guard{
				{Op: kb.OpGeq, Left: kb.V("T"), Right: kb.N(15)},
				{Op: kb.OpLeq, Left: kb.V("O"), Right: kb.N(0.1)},
			},
			Then: []kb.Atom{kb.A("chosen_method", kb.C(MethodOffer))},
		},
		kb.Rule{
			Name: "rfb_with_long_horizon_small_fleet",
			If: []kb.Literal{
				kb.Pos(kb.A("lead_time_minutes", kb.V("T"))),
				kb.Pos(kb.A("overuse_ratio", kb.V("O"))),
				kb.Pos(kb.A("customer_count", kb.V("N"))),
			},
			Guards: []kb.Guard{
				{Op: kb.OpGeq, Left: kb.V("T"), Right: kb.N(360)},
				{Op: kb.OpGt, Left: kb.V("O"), Right: kb.N(0.1)},
				{Op: kb.OpLeq, Left: kb.V("N"), Right: kb.N(50)},
			},
			Then: []kb.Atom{kb.A("chosen_method", kb.C(MethodRFB))},
		},
		kb.Rule{
			Name: "reward_tables_default_mid_horizon",
			If: []kb.Literal{
				kb.Pos(kb.A("lead_time_minutes", kb.V("T"))),
				kb.Pos(kb.A("overuse_ratio", kb.V("O"))),
			},
			Guards: []kb.Guard{
				{Op: kb.OpGeq, Left: kb.V("T"), Right: kb.N(15)},
				{Op: kb.OpLt, Left: kb.V("T"), Right: kb.N(360)},
				{Op: kb.OpGt, Left: kb.V("O"), Right: kb.N(0.1)},
			},
			Then: []kb.Atom{kb.A("chosen_method", kb.C(MethodRewardTable))},
		},
		kb.Rule{
			Name: "reward_tables_default_large_fleet",
			If: []kb.Literal{
				kb.Pos(kb.A("lead_time_minutes", kb.V("T"))),
				kb.Pos(kb.A("overuse_ratio", kb.V("O"))),
				kb.Pos(kb.A("customer_count", kb.V("N"))),
			},
			Guards: []kb.Guard{
				{Op: kb.OpGeq, Left: kb.V("T"), Right: kb.N(360)},
				{Op: kb.OpGt, Left: kb.V("O"), Right: kb.N(0.1)},
				{Op: kb.OpGt, Left: kb.V("N"), Right: kb.N(50)},
			},
			Then: []kb.Atom{kb.A("chosen_method", kb.C(MethodRewardTable))},
		},
	)
}

// acceptanceRules encodes "determine bid acceptance strategy": each method
// fixes how replies are judged.
func acceptanceRules() (*kb.Base, error) {
	return kb.NewBase("determine_bid_acceptance_strategy",
		kb.Rule{
			Name: "offer_counts_yes",
			If:   []kb.Literal{kb.Pos(kb.A("chosen_method", kb.C(MethodOffer)))},
			Then: []kb.Atom{kb.A("bid_acceptance", kb.C(AcceptCountYes))},
		},
		kb.Rule{
			Name: "tables_accept_monotonic_bids",
			If:   []kb.Literal{kb.Pos(kb.A("chosen_method", kb.C(MethodRewardTable)))},
			Then: []kb.Atom{kb.A("bid_acceptance", kb.C(AcceptMonotonicBids))},
		},
		kb.Rule{
			Name: "rfb_accepts_monotonic_ymin",
			If:   []kb.Literal{kb.Pos(kb.A("chosen_method", kb.C(MethodRFB)))},
			Then: []kb.Atom{kb.A("bid_acceptance", kb.C(AcceptMonotonicYMin))},
		},
	)
}

// evaluationRules encodes "evaluate negotiation process": a converged
// negotiation is successful; anything else needs review.
func evaluationRules() (*kb.Base, error) {
	return kb.NewBase("evaluate_negotiation_process",
		kb.Rule{
			Name: "converged_is_successful",
			If:   []kb.Literal{kb.Pos(kb.A("outcome_converged", kb.N(1)))},
			Then: []kb.Atom{kb.A("process_verdict", kb.C("successful"))},
		},
		kb.Rule{
			Name: "non_converged_needs_review",
			If:   []kb.Literal{kb.Pos(kb.A("outcome_converged", kb.N(0)))},
			Then: []kb.Atom{kb.A("process_verdict", kb.C("needs_review"))},
		},
	)
}

// NewUAOwnProcessControl assembles Figure 2: own process control with
// sub-components "determine general negotiation strategy" (itself split
// into announcement-method and bid-acceptance determination) and "evaluate
// negotiation process".
func NewUAOwnProcessControl() (*desire.Composed, error) {
	ont, err := uaOntology()
	if err != nil {
		return nil, err
	}
	strat, err := strategyRules()
	if err != nil {
		return nil, err
	}
	accept, err := acceptanceRules()
	if err != nil {
		return nil, err
	}
	eval, err := evaluationRules()
	if err != nil {
		return nil, err
	}

	opc := desire.NewComposed("own_process_control", ont, 0)
	children := []desire.Component{
		desire.NewReasoning("determine_announcement_method", ont, strat, "chosen_method"),
		desire.NewReasoning("determine_bid_acceptance_strategy", ont, accept, "bid_acceptance"),
		desire.NewReasoning("evaluate_negotiation_process", ont, eval, "process_verdict"),
	}
	for _, c := range children {
		if err := opc.AddChild(c); err != nil {
			return nil, err
		}
	}
	links := []desire.Link{
		{Name: "situation_to_method", From: desire.Endpoint{Port: desire.In},
			To: desire.Endpoint{Component: "determine_announcement_method", Port: desire.In}},
		{Name: "method_to_acceptance", From: desire.Endpoint{Component: "determine_announcement_method", Port: desire.Out},
			To: desire.Endpoint{Component: "determine_bid_acceptance_strategy", Port: desire.In}},
		{Name: "results_to_evaluation", From: desire.Endpoint{Port: desire.In},
			To: desire.Endpoint{Component: "evaluate_negotiation_process", Port: desire.In}},
		{Name: "method_out", From: desire.Endpoint{Component: "determine_announcement_method", Port: desire.Out},
			To: desire.Endpoint{Port: desire.Out}},
		{Name: "acceptance_out", From: desire.Endpoint{Component: "determine_bid_acceptance_strategy", Port: desire.Out},
			To: desire.Endpoint{Port: desire.Out}},
		{Name: "verdict_out", From: desire.Endpoint{Component: "evaluate_negotiation_process", Port: desire.Out},
			To: desire.Endpoint{Port: desire.Out}},
	}
	for _, l := range links {
		if err := opc.AddLink(l); err != nil {
			return nil, err
		}
	}
	err = opc.SetControl([]desire.Step{
		{Transfer: "situation_to_method"},
		{Activate: "determine_announcement_method"},
		{Transfer: "method_to_acceptance"},
		{Activate: "determine_bid_acceptance_strategy"},
		{Transfer: "results_to_evaluation"},
		{Activate: "evaluate_negotiation_process"},
		{Transfer: "method_out"},
		{Transfer: "acceptance_out"},
		{Transfer: "verdict_out"},
	})
	if err != nil {
		return nil, err
	}
	return opc, nil
}

// UASituation is the fact-level input to the Figure 2 composition.
type UASituation struct {
	LeadTimeMinutes float64
	OveruseRatio    float64
	Customers       float64
}

// DecideMethod runs the Figure 2 composition on a situation and returns the
// chosen announcement method and bid acceptance strategy.
func DecideMethod(s UASituation) (method, acceptance string, err error) {
	opc, err := NewUAOwnProcessControl()
	if err != nil {
		return "", "", err
	}
	facts := []kb.Fact{
		{Atom: kb.A("lead_time_minutes", kb.N(s.LeadTimeMinutes)), Truth: kb.True},
		{Atom: kb.A("overuse_ratio", kb.N(s.OveruseRatio)), Truth: kb.True},
		{Atom: kb.A("customer_count", kb.N(s.Customers)), Truth: kb.True},
	}
	out, err := desire.Run(opc, facts)
	if err != nil {
		return "", "", err
	}
	for _, f := range out {
		if f.Truth != kb.True {
			continue
		}
		switch f.Atom.Pred {
		case "chosen_method":
			method = f.Atom.Args[0].Name
		case "bid_acceptance":
			acceptance = f.Atom.Args[0].Name
		}
	}
	if method == "" {
		return "", "", fmt.Errorf("desiremodel: no method derived for %+v", s)
	}
	return method, acceptance, nil
}
