package customeragent

import (
	"fmt"
	"sync"

	"loadbalance/internal/agent"
	"loadbalance/internal/message"
	"loadbalance/internal/units"
)

// unitsEnergy converts a raw kWh value to the domain type (local helper so
// decision code reads naturally).
func unitsEnergy(kwh float64) units.Energy {
	if kwh < 0 {
		return 0
	}
	return units.Energy(kwh)
}

// sessionState tracks one negotiation from the CA's perspective.
type sessionState struct {
	lastCutDownBid float64
	committedYMin  float64
	award          *message.Award
	ended          bool
}

// Agent is a Customer Agent. Its OnMessage runs on the hosting Runtime's
// goroutine; the mutex only guards the result accessors other goroutines
// may call (Awards, SessionCount).
type Agent struct {
	name     string
	prefs    Preferences
	strategy Strategy
	decider  *decider
	model    *agent.Model

	mu       sync.Mutex
	sessions map[string]*sessionState
}

// New constructs a Customer Agent.
func New(name string, prefs Preferences, strategy Strategy) (*Agent, error) {
	if name == "" {
		return nil, fmt.Errorf("%w: empty name", ErrBadPreferences)
	}
	switch strategy {
	case StrategyGreedy, StrategyIncremental, StrategyHoldout:
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadStrategy, int(strategy))
	}
	d, err := newDecider(prefs)
	if err != nil {
		return nil, err
	}
	m, err := agent.NewModel()
	if err != nil {
		return nil, err
	}
	return &Agent{
		name:     name,
		prefs:    prefs,
		strategy: strategy,
		decider:  d,
		model:    m,
		sessions: make(map[string]*sessionState),
	}, nil
}

// Name returns the agent name.
func (a *Agent) Name() string { return a.name }

// Preferences returns the customer's valuation (for experiment reporting).
func (a *Agent) Preferences() Preferences { return a.prefs }

// OnStart implements agent.Handler. Customer Agents are reactive in the
// negotiation: the Utility Agent always opens (Section 3.2).
func (a *Agent) OnStart(rt *agent.Runtime) error { return nil }

// OnMessage implements agent.Handler: the CA's agent interaction management
// task, dispatching to cooperation management per announcement kind.
func (a *Agent) OnMessage(rt *agent.Runtime, env message.Envelope) error {
	reply, ok, err := a.React(env)
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	return rt.Send(env.From, env.Session, reply)
}

// React computes the CA's response to one envelope without sending it —
// the transport-agnostic cooperation-management entry point. It returns the
// reply payload and whether one should be sent. Remote deployments
// (cmd/gridd) call React directly and ship the reply over their own
// transport.
func (a *Agent) React(env message.Envelope) (message.Payload, bool, error) {
	p, err := env.Decode()
	if err != nil {
		return nil, false, err
	}
	st := a.session(env.Session)
	a.mu.Lock()
	ended := st.ended
	a.mu.Unlock()
	if ended {
		return nil, false, nil // late traffic for a finished negotiation
	}
	switch m := p.(type) {
	case message.RewardTable:
		return a.reactRewardTable(env.From, st, m)
	case message.OfferTerms:
		return a.reactOffer(env.From, m)
	case message.BidRequest:
		return a.reactBidRequest(st, m)
	case message.Award:
		a.mu.Lock()
		st.award = &m
		a.mu.Unlock()
		return nil, false, nil
	case message.SessionEnd:
		a.mu.Lock()
		st.ended = true
		a.mu.Unlock()
		return nil, false, nil
	default:
		return nil, false, nil // not addressed to the CA role
	}
}

// reactRewardTable is the CA's "determine bid" for the reward-table method.
func (a *Agent) reactRewardTable(from string, st *sessionState, table message.RewardTable) (message.Payload, bool, error) {
	a.mu.Lock()
	last := st.lastCutDownBid
	a.mu.Unlock()
	bid, err := a.decider.DecideCutDown(a.prefs, a.strategy, table, last)
	if err != nil {
		return nil, false, err
	}
	a.mu.Lock()
	st.lastCutDownBid = bid
	a.mu.Unlock()
	if err := a.model.RecordResponse(from, bid > 0); err != nil {
		return nil, false, err
	}
	return message.CutDownBid{Round: table.Round, CutDown: bid}, true, nil
}

// reactOffer answers a take-it-or-leave-it offer.
func (a *Agent) reactOffer(from string, terms message.OfferTerms) (message.Payload, bool, error) {
	accept := DecideOffer(a.prefs, terms)
	if err := a.model.RecordResponse(from, accept); err != nil {
		return nil, false, err
	}
	return message.OfferReply{Round: 1, Accept: accept}, true, nil
}

// reactBidRequest answers a request-for-bids round.
func (a *Agent) reactBidRequest(st *sessionState, req message.BidRequest) (message.Payload, bool, error) {
	a.mu.Lock()
	if st.committedYMin == 0 {
		st.committedYMin = a.prefs.ExpectedUse.KWhs()
	}
	y := DecideEnergyBid(a.prefs, req, st.committedYMin)
	st.committedYMin = y
	a.mu.Unlock()
	return message.EnergyBid{Round: req.Round, YMinKWh: y}, true, nil
}

// session returns (creating if needed) the state for a session id.
func (a *Agent) session(id string) *sessionState {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.sessions[id]
	if !ok {
		st = &sessionState{}
		a.sessions[id] = st
	}
	return st
}

// AwardFor returns the award received in a session, if any.
func (a *Agent) AwardFor(session string) (message.Award, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.sessions[session]
	if !ok || st.award == nil {
		return message.Award{}, false
	}
	return *st.award, true
}

// LastBid returns the customer's current cut-down bid in a session.
func (a *Agent) LastBid(session string) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.sessions[session]
	if !ok {
		return 0
	}
	return st.lastCutDownBid
}

var _ agent.Handler = (*Agent)(nil)
