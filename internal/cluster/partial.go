package cluster

import (
	"fmt"

	"loadbalance/internal/core"
	"loadbalance/internal/units"
)

// SubScenario derives an incremental re-negotiation scenario from a parent
// scenario: only the named members take part, under a fresh session id and a
// residual capacity target, with each member's demand rescaled to what live
// metering measured. Preferences, strategies and negotiation parameters are
// reused from the parent, so a partial fleet negotiates under exactly the
// rules it originally agreed to.
//
// scale multiplies a member's predicted AND allowed use (missing names keep
// factor 1): an allowance that tracks demand keeps cut-down fractions
// commensurable across sessions, so the paper's balance formulae apply to the
// re-negotiation unchanged.
func SubScenario(s core.Scenario, members []string, scale map[string]float64, normalUse units.Energy, sessionID string) (core.Scenario, error) {
	if len(members) == 0 {
		return core.Scenario{}, fmt.Errorf("%w: no members for partial scenario", ErrBadConfig)
	}
	if sessionID == "" {
		return core.Scenario{}, fmt.Errorf("%w: empty partial session id", ErrBadConfig)
	}
	if normalUse <= 0 {
		return core.Scenario{}, fmt.Errorf("%w: partial normal use %v", ErrBadConfig, normalUse)
	}
	want := make(map[string]bool, len(members))
	for _, n := range members {
		want[n] = true
	}
	sub := s
	sub.SessionID = sessionID
	sub.NormalUse = normalUse
	sub.Customers = make([]core.CustomerSpec, 0, len(members))
	for _, spec := range s.Customers {
		if !want[spec.Name] {
			continue
		}
		if f, ok := scale[spec.Name]; ok {
			if f < 0 {
				return core.Scenario{}, fmt.Errorf("%w: scale %v for %q", ErrBadConfig, f, spec.Name)
			}
			spec.Predicted = spec.Predicted.Scale(f)
			spec.Allowed = spec.Allowed.Scale(f)
		}
		sub.Customers = append(sub.Customers, spec)
		delete(want, spec.Name)
	}
	if len(want) > 0 {
		for n := range want {
			return core.Scenario{}, fmt.Errorf("%w: member %q not in parent scenario", ErrBadConfig, n)
		}
	}
	return sub, nil
}
