// Fixture: a package outside the walltime scope may read the clock freely
// (measurement packages, main packages, the live tick loop).
package clean

import "time"

func now() time.Time {
	return time.Now()
}

func poll(d time.Duration) *time.Ticker {
	return time.NewTicker(d)
}
