package sim

import (
	"strings"
	"testing"
)

func TestE16CrashRecovery(t *testing.T) {
	tab, rep, err := E16CrashRecovery(24, 4, 12, 5, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want uninterrupted/crashed/recovered", len(tab.Rows))
	}
	if !rep.AwardsMatch {
		t.Fatalf("recovered awards diverged:\n%s", tab)
	}
	if rep.Renegotiations == 0 {
		t.Fatal("the spiked run never re-negotiated; recovery was not exercised across a decision point")
	}
	if rep.ResumeTick != rep.CrashTick {
		t.Fatalf("resumed at tick %d, crashed at %d", rep.ResumeTick, rep.CrashTick)
	}
	if rep.RecoveryLatencyNS <= 0 {
		t.Fatal("recovery latency not recorded")
	}
	last := tab.Rows[len(tab.Rows)-1]
	if !strings.Contains(last[len(last)-1], "byte-identical") {
		t.Fatalf("verdict row: %v", last)
	}
	if !strings.Contains(tab.CSV(), "phase,ticks") {
		t.Fatal("CSV header missing")
	}
}
