// Package health is the grid's self-observation layer: a structured,
// leveled event logger feeding an in-memory ring (served as JSON on /logs)
// and an optional file sink; a composite feedback score in [0,100] that a
// fronting load balancer can steer by; a rule-driven alert engine over the
// registered gauges and latency-histogram percentiles; and a flight
// recorder that dumps the process's full observability state — trace ring,
// log ring, metrics, alert state — as one atomic bundle when an alert fires
// or the process dies uncleanly.
//
// The logger is built so a disabled-level call costs a couple of atomic
// loads and nothing else: the level gate runs before any formatting, fields
// are passed as plain value structs (no boxing), and the fast path never
// allocates. Hot loops pay ~nanoseconds for a Debug call that nobody is
// listening to.
package health

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders event severities. The zero value is Debug so a zero Config
// records everything into the ring.
type Level int32

// Levels, least to most severe. Off disables every call site.
const (
	Debug Level = iota
	Info
	Warn
	Error
	Off
)

// levelNames renders levels in JSON and text output.
var levelNames = [...]string{"debug", "info", "warn", "error", "off"}

// String renders the level name.
func (l Level) String() string {
	if l < Debug || l > Off {
		return "unknown"
	}
	return levelNames[l]
}

// ParseLevel parses a level name (the -log-level flag and the /logs level
// filter).
func ParseLevel(s string) (Level, error) {
	for i, n := range levelNames {
		if s == n {
			return Level(i), nil
		}
	}
	return Off, fmt.Errorf("health: unknown log level %q (want debug|info|warn|error|off)", s)
}

// Field is one structured key/value on an event. Values are strings or
// int64s — the two shapes the hot paths need — so building a Field never
// boxes through an interface and a gated-off call site never allocates.
type Field struct {
	Key   string
	Str   string
	Int   int64
	isInt bool
}

// Str builds a string field.
func Str(k, v string) Field { return Field{Key: k, Str: v} }

// Int builds an integer field.
func Int(k string, v int64) Field { return Field{Key: k, Int: v, isInt: true} }

// Value renders the field's value as a string (JSON and text sinks).
func (f Field) Value() string {
	if f.isInt {
		return strconv.FormatInt(f.Int, 10)
	}
	return f.Str
}

// Event is one recorded log event as served on /logs. Fixed identity
// fields (component, role, shard, session, trace) get first-class JSON
// keys; everything else rides in Fields.
type Event struct {
	TimeUs    int64   `json:"tsUs"` // wall clock, microseconds since epoch
	Level     string  `json:"level"`
	Component string  `json:"component"`
	Msg       string  `json:"msg"`
	Fields    []Field `json:"-"`
}

// event is the in-ring representation: the level stays numeric for
// filtering, the fields slice is an owned copy.
type event struct {
	timeUs    int64
	level     Level
	component string
	msg       string
	fields    []Field
}

// Config parameterises a Logger.
type Config struct {
	// Proc labels the process in /logs output and the file sink (e.g.
	// "gridd-live", matching the trace package's process labels).
	Proc string
	// MinLevel is the recording gate: calls below it cost ~nanoseconds and
	// record nothing.
	MinLevel Level
	// RingSize is the in-memory ring capacity in events (default 2048,
	// minimum 16).
	RingSize int
	// FilePath, when non-empty, appends every recorded event as one JSON
	// line to this file (the durable sink under -data-dir).
	FilePath string
	// StderrLevel mirrors events at or above this level to stderr in a
	// human-readable line — the operator signal for processes without an
	// HTTP endpoint. Off (the default Config's value via DefaultStderr)
	// silences the mirror.
	StderrLevel Level
}

// Logger records structured events into a fixed ring, optionally mirroring
// them to a JSONL file and stderr. All methods are safe for concurrent use;
// a nil *Logger is a valid no-op.
type Logger struct {
	level atomic.Int32
	proc  string

	mu      sync.Mutex
	ring    []event
	next    int
	total   uint64
	dropped uint64
	sink    *os.File

	counts [int(Off)]atomic.Uint64 // recorded events per level

	stderrLevel Level
}

// New builds a logger. A FilePath that cannot be opened is an error — a
// silently missing durable sink is worse than a failed start.
func New(cfg Config) (*Logger, error) {
	if cfg.RingSize <= 0 {
		cfg.RingSize = 2048
	}
	if cfg.RingSize < 16 {
		cfg.RingSize = 16
	}
	l := &Logger{
		proc:        cfg.Proc,
		ring:        make([]event, 0, cfg.RingSize),
		stderrLevel: cfg.StderrLevel,
	}
	l.level.Store(int32(cfg.MinLevel))
	if cfg.FilePath != "" {
		f, err := os.OpenFile(cfg.FilePath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("health: log sink: %w", err)
		}
		l.sink = f
	}
	return l, nil
}

// Close releases the file sink, if any.
func (l *Logger) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sink == nil {
		return nil
	}
	err := l.sink.Close()
	l.sink = nil
	return err
}

// Proc returns the logger's process label.
func (l *Logger) Proc() string {
	if l == nil {
		return ""
	}
	return l.proc
}

// SetLevel moves the recording gate at runtime.
func (l *Logger) SetLevel(lv Level) {
	if l != nil {
		l.level.Store(int32(lv))
	}
}

// Enabled reports whether a level would record — the single atomic load a
// disabled call site pays.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && lv < Off && lv >= Level(l.level.Load())
}

// Log records one event. The level gate runs before anything else, so a
// disabled call returns in nanoseconds without touching the fields.
// Callers pass identity via well-known field keys ("role", "shard",
// "session", "trace") plus anything event-specific.
func (l *Logger) Log(lv Level, component, msg string, fields ...Field) {
	if !l.Enabled(lv) {
		return
	}
	l.record(lv, component, msg, fields)
}

// Logf records one formatted event (convenience for cold paths; hot paths
// should pass Fields so a disabled call never formats).
func (l *Logger) Logf(lv Level, component, format string, args ...any) {
	if !l.Enabled(lv) {
		return
	}
	l.record(lv, component, fmt.Sprintf(format, args...), nil)
}

// record copies the event into the ring and mirrors it to the sinks. It
// copies the fields rather than retaining the argument slice, which keeps
// the caller's variadic backing array off the heap on the disabled path.
func (l *Logger) record(lv Level, component, msg string, fields []Field) {
	ev := event{
		timeUs:    time.Now().UnixMicro(),
		level:     lv,
		component: component,
		msg:       msg,
	}
	if len(fields) > 0 {
		ev.fields = append(make([]Field, 0, len(fields)), fields...)
	}
	l.counts[lv].Add(1)

	var line []byte
	l.mu.Lock()
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, ev)
	} else {
		l.ring[l.next] = ev
		l.dropped++
	}
	l.next++
	if l.next == cap(l.ring) {
		l.next = 0
	}
	l.total++
	if l.sink != nil {
		line = appendEventJSON(nil, l.proc, &ev)
		line = append(line, '\n')
		_, _ = l.sink.Write(line)
	}
	l.mu.Unlock()

	if lv >= l.stderrLevel && l.stderrLevel < Off {
		fmt.Fprintf(os.Stderr, "%s %s %s: %s%s\n", //gridlint:allow structuredlog(this is the structured logger itself: its warn+ stderr mirror)
			time.UnixMicro(ev.timeUs).UTC().Format(time.RFC3339Nano),
			lv, component, msg, renderFields(ev.fields))
	}
}

// renderFields renders fields as " k=v k=v" for the stderr mirror.
func renderFields(fields []Field) string {
	if len(fields) == 0 {
		return ""
	}
	out := ""
	for _, f := range fields {
		out += " " + f.Key + "=" + f.Value()
	}
	return out
}

// Filter selects events from the ring. Zero fields match everything.
type LogFilter struct {
	MinLevel  Level
	Component string
	Limit     int // keep only the newest N matches (0 = all)
}

// Events returns matching ring events oldest-first.
func (l *Logger) Events(f LogFilter) []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.ring))
	n := len(l.ring)
	start := 0
	if n == cap(l.ring) {
		start = l.next
	}
	for i := 0; i < n; i++ {
		ev := &l.ring[(start+i)%n]
		if ev.level < f.MinLevel {
			continue
		}
		if f.Component != "" && ev.component != f.Component {
			continue
		}
		out = append(out, Event{
			TimeUs:    ev.timeUs,
			Level:     ev.level.String(),
			Component: ev.component,
			Msg:       ev.msg,
			Fields:    ev.fields,
		})
	}
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[len(out)-f.Limit:]
	}
	return out
}

// StreamEvent is one log event rendered for cross-process streaming: the
// ring entry with its dynamic fields pre-rendered to a JSON object, so the
// transit payload and the receiver need no knowledge of the Field type.
type StreamEvent struct {
	TimeUs    int64
	Level     string
	Component string
	Msg       string
	Fields    []byte // JSON object, nil when the event has no fields
}

// DrainSince returns every event recorded after the cursor (a total-count
// position from a previous drain; 0 drains from the beginning) at or above
// min, oldest first, plus the new cursor and the count of events that
// wrapped out of the ring before this drain reached them. The streaming
// export path: an obsplane emitter keeps the cursor between flushes.
func (l *Logger) DrainSince(cursor uint64, min Level) (evs []StreamEvent, newCursor, missed uint64) {
	if l == nil {
		return nil, cursor, 0
	}
	l.mu.Lock()
	newCursor = l.total
	if cursor >= l.total {
		l.mu.Unlock()
		return nil, newCursor, 0
	}
	pending := l.total - cursor
	if max := uint64(len(l.ring)); pending > max {
		missed = pending - max
		pending = max
	}
	n := len(l.ring)
	start := 0
	if n == cap(l.ring) {
		start = l.next
	}
	// Copy raw entries under the lock, render outside it: field-JSON
	// encoding allocates, and a full-ring drain must not stall Log on the
	// hot path. Each entry owns its fields slice and nothing mutates it
	// after record, so shallow copies stay valid after unlock.
	first := uint64(n) - pending
	raw := make([]event, 0, pending)
	for i := first; i < uint64(n); i++ {
		raw = append(raw, l.ring[(start+int(i))%n])
	}
	l.mu.Unlock()

	evs = make([]StreamEvent, 0, len(raw))
	for i := range raw {
		ev := &raw[i]
		if ev.level < min {
			continue
		}
		se := StreamEvent{
			TimeUs:    ev.timeUs,
			Level:     ev.level.String(),
			Component: ev.component,
			Msg:       ev.msg,
		}
		if len(ev.fields) > 0 {
			se.Fields = appendFieldsJSON(nil, ev.fields)
		}
		evs = append(evs, se)
	}
	return evs, newCursor, missed
}

// Stats reports ring occupancy and per-level counts.
func (l *Logger) Stats() (total, dropped uint64, perLevel [int(Off)]uint64) {
	if l == nil {
		return 0, 0, perLevel
	}
	l.mu.Lock()
	total, dropped = l.total, l.dropped
	l.mu.Unlock()
	for i := range l.counts {
		perLevel[i] = l.counts[i].Load()
	}
	return total, dropped, perLevel
}

// ----- package-level default logger -----

// def is the process-wide logger. It is never nil: the zero-config default
// records Info+ into a ring and mirrors Warn+ to stderr, so library call
// sites (bus, replica, telemetry) have somewhere sensible to log before —
// or without — a command installing its own.
var def atomic.Pointer[Logger]

func init() {
	l, _ := New(Config{Proc: "proc", MinLevel: Info, StderrLevel: Warn})
	def.Store(l)
}

// Init installs a process-wide logger built from cfg and returns it.
func Init(cfg Config) (*Logger, error) {
	l, err := New(cfg)
	if err != nil {
		return nil, err
	}
	def.Store(l)
	return l, nil
}

// Default returns the process-wide logger (never nil).
func Default() *Logger { return def.Load() }

// Enabled reports whether the process-wide logger records at lv.
func Enabled(lv Level) bool { return Default().Enabled(lv) }

// Log records one event on the process-wide logger. This is the call shape
// hot paths use; when the level is gated off it costs two atomic loads.
func Log(lv Level, component, msg string, fields ...Field) {
	Default().Log(lv, component, msg, fields...)
}

// Logf records one formatted event on the process-wide logger.
func Logf(lv Level, component, format string, args ...any) {
	Default().Logf(lv, component, format, args...)
}
