// Fixture: non-printing formatting and writer-directed output structuredlog
// must NOT flag.
package clean

import (
	"bytes"
	"fmt"
	"io"
	"log"
)

// Formatting without output is fine.
func format(err error) string {
	return fmt.Sprintf("event: %v", err)
}

// Writing to a caller-supplied writer is fine (the caller picked it).
func render(w io.Writer, n int) {
	fmt.Fprintf(w, "count=%d\n", n)
}

// Buffers are fine.
func buffered(n int) string {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "count=%d", n)
	return buf.String()
}

// A scoped *log.Logger aimed at a caller-chosen sink is fine; only the
// process-global logger is forbidden.
func scoped(w io.Writer, msg string) {
	log.New(w, "", 0).Println(msg)
}
