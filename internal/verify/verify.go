// Package verify implements compositional verification of negotiation
// traces, following the companion paper ([2] in the reference list:
// "Compositional Design and Verification of a Multi-Agent System for Load
// Balancing", ICMAS'98) and the pro-activeness/reactiveness properties of
// [7]. Where those papers verify the design by hand, this package checks
// the properties mechanically on every recorded trace:
//
//   - UA monotonicity: announced reward tables never decrease (the monotonic
//     concession protocol's utility-company half);
//   - CA monotonicity: each customer's cut-down bids never decrease (the
//     customer half);
//   - termination: every session ends in a terminal outcome within its
//     round bound;
//   - reactiveness: every round with responses follows an announcement
//     (rounds are numbered contiguously from 1);
//   - pro-activeness: a negotiation exists exactly when the predicted
//     overuse warranted one;
//   - ceiling safety: no announced reward ever exceeds max_reward.
package verify

import (
	"errors"
	"fmt"

	"loadbalance/internal/protocol"
)

// ErrViolation is wrapped by every property failure.
var ErrViolation = errors.New("verify: property violated")

// Report lists the checked properties and any violations.
type Report struct {
	Checked    []string
	Violations []error
}

// OK reports whether no property was violated.
func (r Report) OK() bool { return len(r.Violations) == 0 }

// Error joins the violations into one error (nil when OK).
func (r Report) Error() error {
	if r.OK() {
		return nil
	}
	return errors.Join(r.Violations...)
}

// CheckRewardTableTrace verifies every protocol property on a reward-table
// session history.
func CheckRewardTableTrace(history []protocol.RoundRecord, p protocol.Params) Report {
	var rep Report
	check := func(name string, err error) {
		rep.Checked = append(rep.Checked, name)
		if err != nil {
			rep.Violations = append(rep.Violations, fmt.Errorf("%w: %s: %w", ErrViolation, name, err))
		}
	}
	check("ua_monotonic_tables", uaMonotonic(history))
	check("ca_monotonic_bids", caMonotonic(history))
	check("termination", termination(history))
	check("contiguous_rounds", contiguousRounds(history))
	check("reward_ceiling", rewardCeiling(history, p))
	check("overuse_consistency", overuseConsistency(history))
	return rep
}

// uaMonotonic: each announced table dominates its predecessor.
func uaMonotonic(history []protocol.RoundRecord) error {
	for i := 1; i < len(history); i++ {
		if !history[i].Table.DominatesOrEqual(history[i-1].Table) {
			return fmt.Errorf("round %d table regressed", history[i].Round)
		}
	}
	return nil
}

// caMonotonic: no customer's recorded bid ever decreases.
func caMonotonic(history []protocol.RoundRecord) error {
	last := make(map[string]float64)
	for _, rec := range history {
		for customer, bid := range rec.Bids {
			if bid < last[customer]-1e-12 {
				return fmt.Errorf("round %d: %q bid %v after %v", rec.Round, customer, bid, last[customer])
			}
			last[customer] = bid
		}
	}
	return nil
}

// termination: the last round is terminal and no earlier one is.
func termination(history []protocol.RoundRecord) error {
	if len(history) == 0 {
		return errors.New("empty history")
	}
	for i, rec := range history {
		terminal := rec.Outcome.Terminal()
		if i == len(history)-1 && !terminal {
			return fmt.Errorf("final round %d is not terminal (%v)", rec.Round, rec.Outcome)
		}
		if i < len(history)-1 && terminal {
			return fmt.Errorf("round %d terminal but history continues", rec.Round)
		}
	}
	return nil
}

// contiguousRounds: rounds are numbered 1..n in order (reactiveness — every
// response round corresponds to exactly one announcement).
func contiguousRounds(history []protocol.RoundRecord) error {
	for i, rec := range history {
		if rec.Round != i+1 {
			return fmt.Errorf("round %d at position %d", rec.Round, i)
		}
	}
	return nil
}

// rewardCeiling: no announced reward exceeds the per-level max_reward.
func rewardCeiling(history []protocol.RoundRecord, p protocol.Params) error {
	for _, rec := range history {
		for _, e := range rec.Table.Entries {
			if e.Reward > p.MaxRewardAt(e.CutDown)+1e-9 {
				return fmt.Errorf("round %d: reward %v at %v exceeds ceiling %v",
					rec.Round, e.Reward, e.CutDown, p.MaxRewardAt(e.CutDown))
			}
		}
	}
	return nil
}

// overuseConsistency: the recorded overuse never increases across rounds
// (bids only ever deepen under monotonic concession).
func overuseConsistency(history []protocol.RoundRecord) error {
	for i := 1; i < len(history); i++ {
		if history[i].OveruseKWh > history[i-1].OveruseKWh+1e-9 {
			return fmt.Errorf("round %d overuse %v grew from %v",
				history[i].Round, history[i].OveruseKWh, history[i-1].OveruseKWh)
		}
	}
	return nil
}

// CheckProactiveness verifies the UA's opening behaviour: it negotiates
// exactly when the predicted overuse exceeds the warrant threshold.
func CheckProactiveness(initialRatio, warrantRatio float64, negotiated bool) error {
	shouldNegotiate := initialRatio > warrantRatio
	if shouldNegotiate != negotiated {
		return fmt.Errorf("%w: proactiveness: ratio %v vs warrant %v but negotiated=%v",
			ErrViolation, initialRatio, warrantRatio, negotiated)
	}
	return nil
}

// CheckRFBTrace verifies the request-for-bids analogues: bids non-increasing
// per customer, termination and contiguous rounds.
func CheckRFBTrace(history []protocol.RFBRound) Report {
	var rep Report
	check := func(name string, err error) {
		rep.Checked = append(rep.Checked, name)
		if err != nil {
			rep.Violations = append(rep.Violations, fmt.Errorf("%w: %s: %w", ErrViolation, name, err))
		}
	}
	check("ca_monotonic_ymin", func() error {
		last := make(map[string]float64)
		for _, rec := range history {
			for customer, y := range rec.Bids {
				if prev, ok := last[customer]; ok && y > prev+1e-12 {
					return fmt.Errorf("round %d: %q ymin %v after %v", rec.Round, customer, y, prev)
				}
				last[customer] = y
			}
		}
		return nil
	}())
	check("termination", func() error {
		if len(history) == 0 {
			return errors.New("empty history")
		}
		last := history[len(history)-1]
		if !last.Outcome.Terminal() {
			return fmt.Errorf("final round %d not terminal", last.Round)
		}
		return nil
	}())
	check("contiguous_rounds", func() error {
		for i, rec := range history {
			if rec.Round != i+1 {
				return fmt.Errorf("round %d at position %d", rec.Round, i)
			}
		}
		return nil
	}())
	return rep
}
