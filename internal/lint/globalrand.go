package lint

import (
	"go/ast"
)

// globalRandExempt are math/rand package-level functions that construct
// seeded generators or sources rather than consuming the shared global
// one.
var globalRandExempt = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors.
	"NewPCG": true, "NewChaCha8": true,
}

// GlobalRand returns the globalrand analyzer.
//
// Invariant guarded: every random draw must come from a seeded *rand.Rand
// threaded in from scenario config. The package-global math/rand functions
// share one process-wide source, so any draw through them entangles
// otherwise-independent components: meters, synthetic scenarios and bus
// jitter each carry their own seed precisely so that a replayed run — and
// a resharded one — consumes identical streams. (Seeding the global source
// would not help: draw order across goroutines is still scheduler-
// dependent.)
func GlobalRand() *Analyzer {
	return &Analyzer{
		Name: "globalrand",
		Doc:  "forbids package-global math/rand functions in favor of seeded *rand.Rand instances",
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := callee(pass.TypesInfo, call)
					if fn == nil || fn.Pkg() == nil {
						return true
					}
					path := fn.Pkg().Path()
					if path != "math/rand" && path != "math/rand/v2" {
						return true
					}
					if globalRandExempt[fn.Name()] || !isPkgFunc(fn, path, fn.Name()) {
						return true
					}
					pass.Reportf(call.Pos(),
						"package-global %s.%s draws from the shared process-wide source: thread a seeded *rand.Rand from scenario config instead",
						path, fn.Name())
					return true
				})
			}
			return nil
		},
	}
}
