package trace

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
)

// Dump is the JSON document served by /trace and written by gridd's
// -trace-dump flag: one process's span ring plus enough metadata to know
// whether the ring wrapped.
type Dump struct {
	Proc    string   `json:"proc"`
	Enabled bool     `json:"enabled"`
	Total   uint64   `json:"total"`
	Dropped uint64   `json:"dropped"`
	Spans   []Record `json:"spans"`
}

// Snapshot captures the active tracer's ring under the given filter.
func Snapshot(f Filter) Dump {
	t := Active()
	if t == nil {
		return Dump{Enabled: false, Spans: []Record{}}
	}
	total, dropped := t.Stats()
	return Dump{
		Proc:    t.Proc(),
		Enabled: true,
		Total:   total,
		Dropped: dropped,
		Spans:   t.Records(f),
	}
}

// WriteDump writes the active tracer's ring as JSON (the -trace-dump
// format, identical to the /trace response body).
func WriteDump(w io.Writer, f Filter) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(Snapshot(f))
}

// Handler serves the active tracer's ring as JSON. Query parameters:
//
//	session=ID   only spans of one negotiation session
//	shard=NAME   only spans labeled with the shard (or whose agent name
//	             contains it)
//	trace=HEX    only spans of one trace
//	limit=N      newest N matching spans
//
// A malformed parameter (non-hex trace, non-positive or non-numeric limit)
// is a 400, not a silently unfiltered dump. When tracing is disabled the
// response is {"enabled":false,...} with status 200, so scrapers need no
// special-casing.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		f := Filter{
			Session: q.Get("session"),
			Shard:   q.Get("shard"),
			Trace:   q.Get("trace"),
		}
		if f.Trace != "" {
			if _, ok := ParseID(f.Trace); !ok {
				http.Error(w, "bad trace id (want hex)", http.StatusBadRequest)
				return
			}
		}
		if s := q.Get("limit"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n <= 0 {
				http.Error(w, "bad limit (want a positive integer)", http.StatusBadRequest)
				return
			}
			f.Limit = n
		}
		w.Header().Set("Content-Type", "application/json")
		_ = WriteDump(w, f)
	})
}
