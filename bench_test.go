package loadbalance_test

// One benchmark per experiment in DESIGN.md's index (E1…E10) — running any
// of these regenerates the corresponding figure/table data — plus
// micro-benchmarks on the negotiation hot paths. EXPERIMENTS.md records a
// reference run.

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"loadbalance"
	"loadbalance/internal/agent"
	"loadbalance/internal/benchrun"
	"loadbalance/internal/bus"
	"loadbalance/internal/cluster"
	"loadbalance/internal/core"
	"loadbalance/internal/message"
	"loadbalance/internal/protocol"
	"loadbalance/internal/replica"
	"loadbalance/internal/sim"
	"loadbalance/internal/store"
	"loadbalance/internal/telemetry"
	"loadbalance/internal/utilityagent"
)

// BenchmarkE1DemandCurve regenerates the Figure 1 demand curve.
func BenchmarkE1DemandCurve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := sim.E1DemandCurve(200, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2InitialPhase regenerates the Figure 6 round-1 table.
func BenchmarkE2InitialPhase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sim.E2InitialPhase(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3FinalPhase regenerates the Figure 7 final table.
func BenchmarkE3FinalPhase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sim.E3FinalPhase(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4CustomerDecision regenerates the Figures 8-9 decision trace.
func BenchmarkE4CustomerDecision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sim.E4CustomerDecision(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5MethodComparison runs all three announcement methods on a
// 50-household fleet.
func BenchmarkE5MethodComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sim.E5MethodComparison(50, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6BetaSweep sweeps the negotiation-speed parameter.
func BenchmarkE6BetaSweep(b *testing.B) {
	betas := []float64{0.5, 1.85, 5}
	for i := 0; i < b.N; i++ {
		if _, err := sim.E6BetaSweep(betas); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7Scalability runs fleets of increasing size; per-size results
// come from the sub-benchmarks.
func BenchmarkE7Scalability(b *testing.B) {
	for _, n := range []int{10, 100, 500} {
		n := n
		b.Run(sizeName(n), func(b *testing.B) {
			s, err := core.PopulationScenario(core.PopulationConfig{
				N: n, Seed: 1, Margin: 0.2, Method: utilityagent.MethodRewardTable,
			})
			if err != nil {
				b.Fatal(err)
			}
			s.Timeout = 2 * time.Minute
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(n int) string { return fmt.Sprintf("n%d", n) }

// BenchmarkE8ProtocolProperties verifies the protocol properties on
// randomized runs.
func BenchmarkE8ProtocolProperties(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sim.E8ProtocolProperties(3, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9FailureInjection measures lossy negotiations.
func BenchmarkE9FailureInjection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sim.E9FailureInjection([]float64{0.1}, []int{2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10RewardTableSeries regenerates the full per-round table data.
func BenchmarkE10RewardTableSeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sim.E10RewardTableSeries(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterScale compares one complete negotiation flat against the
// hierarchical concentrator tree on the same synthetic fleet. At n10000 the
// sharded tree's round wall-time beats flat: the root handles K aggregated
// bids instead of N, per-bid decoding spreads across the concentrators, and
// the shards' buses remove the single-mutex bottleneck.
func BenchmarkClusterScale(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		s, err := core.SyntheticScenario(core.SyntheticConfig{N: n, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		s.Timeout = 10 * time.Minute
		b.Run("flat/"+sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(s); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, shards := range []int{16} {
			b.Run(fmt.Sprintf("shards%d/%s", shards, sizeName(n)), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := cluster.Run(cluster.Config{Scenario: s, Shards: shards}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkPaperScenario is the headline number: one complete Figures 6-9
// negotiation (10 agents, 3 rounds) end to end.
func BenchmarkPaperScenario(b *testing.B) {
	s, err := loadbalance.PaperScenario()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := loadbalance.Run(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableUpdate measures the reward update rule on the hot path.
func BenchmarkTableUpdate(b *testing.B) {
	tab, err := protocol.StandardTable(42.5)
	if err != nil {
		b.Fatal(err)
	}
	p := core.PaperParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Update(0.35, p)
	}
}

// BenchmarkBusRoundTrip measures one send/receive pair on the in-proc bus.
func BenchmarkBusRoundTrip(b *testing.B) {
	ib, err := bus.NewInProc(bus.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer ib.Close()
	inbox, err := ib.Register("ua", 1)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := ib.Register("c1", 1); err != nil {
		b.Fatal(err)
	}
	env, err := message.NewEnvelope("c1", "ua", "s", message.CutDownBid{Round: 1, CutDown: 0.2})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ib.Send(env); err != nil {
			b.Fatal(err)
		}
		<-inbox
	}
}

// BenchmarkEnvelopeCodec measures wire marshalling.
func BenchmarkEnvelopeCodec(b *testing.B) {
	tab, err := protocol.StandardTable(42.5)
	if err != nil {
		b.Fatal(err)
	}
	s, err := loadbalance.PaperScenario()
	if err != nil {
		b.Fatal(err)
	}
	env, err := message.NewEnvelope("ua", "", "s", tab.Message(s.Window, 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := env.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := message.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

// legacyWireFrame is the v1 TCP framing (an envelope nested in a JSON union
// frame, newline-delimited), kept here as the baseline BenchmarkWireCodec
// measures the v2 binary framing against.
type legacyWireFrame struct {
	Hello    string            `json:"hello,omitempty"`
	Envelope *message.Envelope `json:"envelope,omitempty"`
}

// wireCodecEnvelopes are the two shapes that dominate transport traffic: the
// UA's reward-table announcement (largest frame on the wire) and a
// customer's cut-down bid (smallest, highest count).
func wireCodecEnvelopes(b *testing.B) map[string]message.Envelope {
	b.Helper()
	tab, err := protocol.StandardTable(42.5)
	if err != nil {
		b.Fatal(err)
	}
	s, err := loadbalance.PaperScenario()
	if err != nil {
		b.Fatal(err)
	}
	table, err := message.NewEnvelope("ua", "", "s", tab.Message(s.Window, 1))
	if err != nil {
		b.Fatal(err)
	}
	bid, err := message.NewEnvelope("c01", "ua", "s", message.CutDownBid{Round: 1, CutDown: 0.2})
	if err != nil {
		b.Fatal(err)
	}
	return map[string]message.Envelope{"table": table, "bid": bid}
}

// BenchmarkWireCodec measures one encode+decode round trip through each TCP
// framing: the v1 newline-JSON union frame against the v2 varint-length
// binary frame. The v2 codec is the acceptance gate for the transport
// change: it must deliver at least 2x the v1 throughput. The binary bodies
// live in internal/benchrun so cmd/benchrec records the same floors into
// BENCH_gridd.json.
func BenchmarkWireCodec(b *testing.B) {
	for _, name := range []string{"table", "bid"} {
		env := wireCodecEnvelopes(b)[name]
		b.Run("json/"+name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				data, err := json.Marshal(legacyWireFrame{Envelope: &env})
				if err != nil {
					b.Fatal(err)
				}
				data = append(data, '\n')
				var f legacyWireFrame
				if err := json.Unmarshal(data[:len(data)-1], &f); err != nil || f.Envelope == nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(len(data)))
			}
		})
	}
	b.Run("binary/table", benchrun.WireCodecTable)
	b.Run("binary/bid", benchrun.WireCodecBid)
}

// BenchmarkWireCodecTraced is the tracing tentpole's overhead gate on the
// wire: the binary framing with the trace subsystem enabled and untraced
// envelopes (must be free — the encoding is byte-identical), and with a
// stamped trace context (the 18-byte-per-frame cost of actually tracing).
func BenchmarkWireCodecTraced(b *testing.B) {
	b.Run("enabled/table", benchrun.WireCodecTableTraced)
	b.Run("enabled/bid", benchrun.WireCodecBidTraced)
	b.Run("ctx/table", benchrun.WireCodecTableCtx)
	b.Run("ctx/bid", benchrun.WireCodecBidCtx)
}

// BenchmarkDistributedNegotiation compares one complete negotiation through
// the in-process concentrator tree against the same tree with every
// concentrator behind its own pair of TCP connections — the real cost of
// moving the tier out of process.
func BenchmarkDistributedNegotiation(b *testing.B) {
	s, err := core.SyntheticScenario(core.SyntheticConfig{N: 64, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	s.Timeout = time.Minute
	b.Run("inproc/shards4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cluster.Run(cluster.Config{Scenario: s, Shards: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tcp/shards4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cluster.RunDistributed(cluster.DistributedConfig{Scenario: s, Shards: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE11DayPeakShaving runs a full day of rolling negotiations.
func BenchmarkE11DayPeakShaving(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sim.E11DayPeakShaving(20, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE12MarketComparison compares the protocol to the market baseline.
func BenchmarkE12MarketComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sim.E12MarketComparison(50, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE13ForecastDriven measures the forecast-driven negotiation.
func BenchmarkE13ForecastDriven(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sim.E13ForecastDrivenNegotiation(10, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplicationStream measures the WAL replication pipeline end to
// end: journal frames tailed off the primary's data directory, shipped over
// a real TCP connection as raw-frame replication batches, CRC-verified and
// persisted byte-exactly into a hot standby's journal, with per-batch acks
// flowing back. The acceptance gate is ≥300k records/s — replication must
// never become the live loop's bottleneck (the journal itself sustains
// ~750k records/s).
func BenchmarkReplicationStream(b *testing.B) {
	primDir, replDir := b.TempDir(), b.TempDir()
	prim, _, err := store.Open(primDir, store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer prim.Close()
	cp := store.TickCheckpoint{Readings: 512, Batches: 4, Shard: make([]float64, 16)}
	for i := range cp.Shard {
		cp.Shard[i] = 10 + float64(i)/16
	}
	for i := 0; i < b.N; i++ {
		cp.Tick = i
		if err := prim.AppendTick(cp); err != nil {
			b.Fatal(err)
		}
		if i%256 == 255 {
			if err := prim.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := prim.Sync(); err != nil {
		b.Fatal(err)
	}

	sender, err := replica.StartSender(replica.SenderConfig{
		Dir:       primDir,
		Addr:      "127.0.0.1:0",
		Poll:      time.Millisecond,
		Heartbeat: 50 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer sender.Close()
	repl, _, err := store.Open(replDir, store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer repl.Close()
	tap := &replica.StoreTap{St: repl}

	b.ReportAllocs()
	b.ResetTimer()
	rx, err := replica.StartReceiver(replica.ReceiverConfig{
		ID:              "bench",
		Addrs:           []string{sender.Addr()},
		FailoverTimeout: time.Minute,
	}, tap)
	if err != nil {
		b.Fatal(err)
	}
	defer rx.Close()
	deadline := time.Now().Add(5 * time.Minute)
	for tap.LastSeq() < uint64(b.N) {
		if time.Now().After(deadline) {
			b.Fatalf("replication stalled at seq %d of %d", tap.LastSeq(), b.N)
		}
		time.Sleep(200 * time.Microsecond)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkJournalAppend measures the durability hot path: meter-batch
// checkpoint records (16-shard tick vectors, the record the live loop
// appends every tick) encoded and appended to the write-ahead journal, with
// the loop's commit cadence (one buffer flush per 64 records) and a final
// fsync. The acceptance gate for the store is ≥500k records/s — journaling
// must never bottleneck the telemetry floor of 100k readings/s. The body
// lives in internal/benchrun so cmd/benchrec records the same floor into
// BENCH_gridd.json.
func BenchmarkJournalAppend(b *testing.B) { benchrun.JournalAppend(b) }

// BenchmarkJournalAppendTraced is the same workload with the trace
// subsystem enabled — the tracing tentpole's overhead gate on the
// durability path (budget: within 5% of BenchmarkJournalAppend).
func BenchmarkJournalAppendTraced(b *testing.B) { benchrun.JournalAppendTraced(b) }

// BenchmarkLogEventDisabled measures a below-threshold structured log call
// — the cost the migrated log sites pay when their level is gated off. The
// body lives in internal/benchrun; benchrec -check holds it to an absolute
// 25ns/op budget.
func BenchmarkLogEventDisabled(b *testing.B) { benchrun.LogEventDisabled(b) }

// BenchmarkFeedbackScoreCompute measures one composite feedback-score
// recomputation — the health layer's per-tick addition to the live loop.
func BenchmarkFeedbackScoreCompute(b *testing.B) { benchrun.FeedbackScoreCompute(b) }

// BenchmarkObsWorkload measures the instrumented per-tick path (spans +
// histogram + sampled log) with nothing consuming the rings.
func BenchmarkObsWorkload(b *testing.B) { benchrun.ObsWorkload(b) }

// BenchmarkObsWorkloadStreamed is the same workload with a live obs hub and
// emitter shipping the rings over loopback — the fleet observability
// plane's overhead gate (budget: within 5% of BenchmarkObsWorkload).
func BenchmarkObsWorkloadStreamed(b *testing.B) { benchrun.ObsWorkloadStreamed(b) }

// BenchmarkTsdbAppend measures one metrics-history store append — the
// per-sample scrape cost.
func BenchmarkTsdbAppend(b *testing.B) { benchrun.TsdbAppend(b) }

// BenchmarkTsdbRangeQuery measures one rate() range query over a full raw
// ring — the /query and gridctl plot hot path.
func BenchmarkTsdbRangeQuery(b *testing.B) { benchrun.TsdbRangeQuery(b) }

// BenchmarkTsdbWorkload measures the instrumented observe path with no
// history scraper running.
func BenchmarkTsdbWorkload(b *testing.B) { benchrun.TsdbWorkload(b) }

// BenchmarkTsdbWorkloadScraped is the same workload with a live scraper
// snapshotting the registry into a store — the metrics-history tentpole's
// overhead gate (budget: within 5% of BenchmarkTsdbWorkload).
func BenchmarkTsdbWorkloadScraped(b *testing.B) { benchrun.TsdbWorkloadScraped(b) }

// BenchmarkTelemetryIngest measures the live metering hot path: a fleet of
// meters publishing batched readings over one in-process bus into the
// collector agent, per-tick. The reported readings/s metric is the sustained
// ingest rate through the whole pipeline (sample, envelope-encode, bus
// delivery, decode, shard aggregation); the live loop needs ≥100k/s to meter
// a 100k-customer grid at 1-second ticks.
func BenchmarkTelemetryIngest(b *testing.B) {
	const fleetSize = 512
	meters := make([]*telemetry.Meter, 0, fleetSize)
	shardOf := make(map[string]int, fleetSize)
	for i := 0; i < fleetSize; i++ {
		name := fmt.Sprintf("c%06d", i)
		m, err := telemetry.NewMeter(telemetry.MeterConfig{Customer: name, BaseKWh: 1.5, Jitter: 0.02, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		meters = append(meters, m)
		shardOf[name] = i % 16
	}
	fleet, err := telemetry.NewFleet(meters, 0)
	if err != nil {
		b.Fatal(err)
	}
	col, err := telemetry.NewCollector(telemetry.CollectorConfig{ShardOf: shardOf, Shards: 16})
	if err != nil {
		b.Fatal(err)
	}
	ib, err := bus.NewInProc(bus.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer ib.Close()
	rt, err := agent.Start("collector", ib, col.Handler(), 256)
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Stop()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := fleet.PublishTick(ib, "metering", "collector", "bench", i)
		if err != nil {
			b.Fatal(err)
		}
		if err := col.WaitTick(i, n, 10*time.Second); err != nil {
			b.Fatal(err)
		}
		col.CloseTick(i)
	}
	b.StopTimer()
	b.ReportMetric(float64(fleetSize*b.N)/b.Elapsed().Seconds(), "readings/s")
}

// BenchmarkLiveDeviationDetect measures the per-tick deviation screen across
// a sharded fleet — the O(shards) work the live loop does every tick before
// deciding whether anything re-negotiates.
func BenchmarkLiveDeviationDetect(b *testing.B) {
	const shards = 64
	det, err := telemetry.NewDeviationDetector(shards, telemetry.DeviationConfig{AbsKWh: 0.5, Rel: 0.25})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One shard drifts periodically; the rest hold their profile.
		for s := 0; s < shards; s++ {
			measured := 10.0
			if s == i%shards && i%3 != 0 {
				measured = 25
			}
			det.Observe(s, measured, 10)
		}
	}
	b.ReportMetric(float64(shards*b.N)/b.Elapsed().Seconds(), "observations/s")
}
