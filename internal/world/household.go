package world

import (
	"fmt"
	"math/rand"
	"time"

	"loadbalance/internal/units"
)

// Household is one domestic consumer: a set of devices plus behavioural
// parameters. Households are the physical substrate behind Customer Agents.
type Household struct {
	ID        string
	Occupants int
	Devices   []Device

	rng *rand.Rand
}

// NewHousehold creates a household with a deterministic per-household random
// stream derived from the seed and index.
func NewHousehold(id string, occupants int, hasEV bool, seed int64) (*Household, error) {
	if occupants <= 0 {
		return nil, fmt.Errorf("world: household %q: occupants %d must be positive", id, occupants)
	}
	rng := rand.New(rand.NewSource(seed))
	return &Household{
		ID:        id,
		Occupants: occupants,
		Devices:   standardDevices(occupants, hasEV, rng),
		rng:       rng,
	}, nil
}

// DemandAt returns the household's aggregate power draw at an instant.
func (h *Household) DemandAt(t time.Time, w Weather) units.Power {
	total := 0.0
	for _, d := range h.Devices {
		total += d.RatedKW * usageFactor(d.Kind, t, w, h.rng)
	}
	return units.Power(total)
}

// DemandByDevice returns per-device power draw at an instant; the sum equals
// a DemandAt sample drawn from the same stream position.
func (h *Household) DemandByDevice(t time.Time, w Weather) map[DeviceKind]units.Power {
	out := make(map[DeviceKind]units.Power, len(h.Devices))
	for _, d := range h.Devices {
		out[d.Kind] += units.Power(d.RatedKW * usageFactor(d.Kind, t, w, h.rng))
	}
	return out
}

// FlexibleShareAt returns the fraction of the household's current draw that
// is sheddable at an instant: Σ flexible load / Σ load. This is the physical
// ceiling on any cut-down the household's agent can honestly bid.
func (h *Household) FlexibleShareAt(t time.Time, w Weather) units.Fraction {
	total, flex := 0.0, 0.0
	for _, d := range h.Devices {
		draw := d.RatedKW * usageFactor(d.Kind, t, w, h.rng)
		total += draw
		flex += draw * d.Flexible
	}
	if total == 0 {
		return 0
	}
	return units.Fraction(flex / total)
}

// Population is a fleet of households plus the weather they share.
type Population struct {
	Households []*Household
	Weather    *WeatherModel
}

// PopulationConfig parameterises population synthesis.
type PopulationConfig struct {
	// N is the number of households.
	N int
	// Seed drives all randomness.
	Seed int64
	// EVShare is the fraction of households with an EV charger.
	EVShare float64
	// MeanOccupants sets the average household size (clamped to [1, 6]).
	MeanOccupants float64
}

// NewPopulation synthesises a household fleet. Occupant counts follow a
// clamped rounded normal around MeanOccupants.
func NewPopulation(cfg PopulationConfig) (*Population, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("world: population size %d must be positive", cfg.N)
	}
	if cfg.MeanOccupants == 0 {
		cfg.MeanOccupants = 2.3
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	hh := make([]*Household, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		occ := int(cfg.MeanOccupants + rng.NormFloat64() + 0.5)
		if occ < 1 {
			occ = 1
		}
		if occ > 6 {
			occ = 6
		}
		h, err := NewHousehold(fmt.Sprintf("h%04d", i), occ, rng.Float64() < cfg.EVShare, cfg.Seed+int64(i)*7919)
		if err != nil {
			return nil, err
		}
		hh = append(hh, h)
	}
	return &Population{
		Households: hh,
		Weather:    NewWeatherModel(cfg.Seed),
	}, nil
}

// DemandAt returns the fleet's aggregate power draw at an instant.
func (p *Population) DemandAt(t time.Time) units.Power {
	w := p.Weather.At(t)
	total := units.Power(0)
	for _, h := range p.Households {
		total += h.DemandAt(t, w)
	}
	return total
}
