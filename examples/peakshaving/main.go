// Peakshaving replays the paper's own prototype run (Figures 6-9): normal
// capacity 100, predicted usage 135, the linear reward table with 17 at
// cut-down 0.4 in round 1, and three rounds of monotonic concession ending
// with reward ≈24.8 at 0.4 and the overuse cut from 35 to ≈12.
package main

import (
	"fmt"
	"log"

	"loadbalance"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	s, err := loadbalance.PaperScenario()
	if err != nil {
		return err
	}
	res, err := loadbalance.Run(s)
	if err != nil {
		return err
	}
	fmt.Print(loadbalance.Render(res))

	// The Figures 8-9 storyline: customer c01 requires at least 13 for a
	// cut-down of 0.3 and 21 for 0.4; it bids 0.2 against the round-1 table
	// and 0.4 once the rewards have grown.
	fmt.Println("\ncustomer c01 per-round bids (Figures 8-9):")
	last := 0.0
	for _, rec := range res.History {
		if b, ok := rec.Bids["c01"]; ok {
			last = b
		}
		offered, _ := rec.Table.RewardFor(0.4)
		fmt.Printf("  round %d: offered %.2f at 0.4 → bid %.1f\n", rec.Round, offered, last)
	}

	rep := loadbalance.VerifyTrace(res, s.Params)
	if !rep.OK() {
		return rep.Error()
	}
	fmt.Printf("\nall %d protocol properties hold on this trace\n", len(rep.Checked))
	return nil
}
