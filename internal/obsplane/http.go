package obsplane

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"loadbalance/internal/health"
	"loadbalance/internal/trace"
	"loadbalance/internal/tsdb"
)

// FleetLogEvent is one merged log event as served on /fleet/logs.
type FleetLogEvent struct {
	TsUs      int64           `json:"tsUs"`
	Level     string          `json:"level"`
	Proc      string          `json:"proc"`
	Component string          `json:"component"`
	Msg       string          `json:"msg"`
	Fields    json.RawMessage `json:"fields,omitempty"`
}

// FleetLogsDoc is the /fleet/logs response body.
type FleetLogsDoc struct {
	Procs  []string        `json:"procs"`
	Missed uint64          `json:"missed"` // events lost before reaching the root (wraps + sheds)
	Events []FleetLogEvent `json:"events"`
}

// FleetTraceDoc is the /fleet/trace response body: the span rings of every
// subscribed process merged into one stream, stitched by shared trace ids.
type FleetTraceDoc struct {
	Procs  []string       `json:"procs"`
	Missed uint64         `json:"missed"` // spans lost before reaching the root
	Spans  []trace.Record `json:"spans"`
}

// logFilter selects events for /fleet/logs.
type logFilter struct {
	proc      string
	minLevel  health.Level
	component string
	afterUs   int64
	limit     int
}

// MergedLogs returns the fleet's log events oldest-first under the filter.
func (h *Hub) mergedLogs(f logFilter) FleetLogsDoc {
	h.mu.Lock()
	doc := FleetLogsDoc{Events: []FleetLogEvent{}}
	names := make([]string, 0, len(h.procs))
	for n := range h.procs {
		names = append(names, n)
	}
	sort.Strings(names)
	doc.Procs = names
	for _, n := range names {
		p := h.procs[n]
		doc.Missed += p.missedLogs + p.logDropped
		if f.proc != "" && n != f.proc {
			continue
		}
		for _, fl := range ringOrdered(p.logRing, p.logNext, h.cfg.LogRing) {
			lv, err := health.ParseLevel(fl.ev.Level)
			if err != nil || lv < f.minLevel {
				continue
			}
			if f.component != "" && fl.ev.Component != f.component {
				continue
			}
			if fl.ev.TsUs <= f.afterUs {
				continue
			}
			doc.Events = append(doc.Events, FleetLogEvent{
				TsUs:      fl.ev.TsUs,
				Level:     fl.ev.Level,
				Proc:      fl.proc,
				Component: fl.ev.Component,
				Msg:       fl.ev.Msg,
				Fields:    fl.ev.Fields,
			})
		}
	}
	h.mu.Unlock()
	sort.SliceStable(doc.Events, func(i, j int) bool {
		if doc.Events[i].TsUs != doc.Events[j].TsUs {
			return doc.Events[i].TsUs < doc.Events[j].TsUs
		}
		return doc.Events[i].Proc < doc.Events[j].Proc
	})
	if f.limit > 0 && len(doc.Events) > f.limit {
		doc.Events = doc.Events[len(doc.Events)-f.limit:]
	}
	return doc
}

// mergedTrace returns the fleet's spans under the filter, the hub process's
// own active ring included (the root is part of its own fleet).
func (h *Hub) mergedTrace(f trace.Filter) FleetTraceDoc {
	doc := FleetTraceDoc{Spans: []trace.Record{}}
	procSet := make(map[string]bool)
	if f.Trace != "" {
		if id, ok := trace.ParseID(f.Trace); ok {
			f.Trace = fmt.Sprintf("%016x", id) // records render ids zero-padded
		}
	}

	if t := trace.Active(); t != nil {
		for _, r := range t.Records(trace.Filter{Session: f.Session, Trace: f.Trace, Shard: f.Shard}) {
			doc.Spans = append(doc.Spans, r)
			procSet[r.Proc] = true
		}
	}

	h.mu.Lock()
	names := make([]string, 0, len(h.procs))
	for n := range h.procs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p := h.procs[n]
		doc.Missed += p.missedSpans + p.spanDropped
		for _, r := range ringOrdered(p.spanRing, p.spanNext, h.cfg.SpanRing) {
			if f.Session != "" && r.Session != f.Session {
				continue
			}
			if f.Trace != "" && r.Trace != f.Trace {
				continue
			}
			if f.Shard != "" && r.Shard != f.Shard && !strings.Contains(r.Agent, f.Shard) {
				continue
			}
			doc.Spans = append(doc.Spans, r)
			procSet[r.Proc] = true
		}
	}
	h.mu.Unlock()

	sort.SliceStable(doc.Spans, func(i, j int) bool {
		if doc.Spans[i].StartUs != doc.Spans[j].StartUs {
			return doc.Spans[i].StartUs < doc.Spans[j].StartUs
		}
		return doc.Spans[i].Span < doc.Spans[j].Span
	})
	if f.Limit > 0 && len(doc.Spans) > f.Limit {
		doc.Spans = doc.Spans[len(doc.Spans)-f.Limit:]
	}
	for n := range procSet {
		doc.Procs = append(doc.Procs, n)
	}
	sort.Strings(doc.Procs)
	return doc
}

// FleetLogsHandler serves the merged fleet log view. Query params: proc
// (exact), level (minimum level name), component (exact), afterUs (only
// events strictly newer — the gridctl logs -f cursor), limit (newest N).
// Malformed params are a 400, not a silent full dump.
func (h *Hub) FleetLogsHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		f := logFilter{proc: q.Get("proc"), component: q.Get("component")}
		if s := q.Get("level"); s != "" {
			lv, err := health.ParseLevel(s)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad level %q", s), http.StatusBadRequest)
				return
			}
			f.minLevel = lv
		}
		if s := q.Get("afterUs"); s != "" {
			us, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad afterUs %q", s), http.StatusBadRequest)
				return
			}
			f.afterUs = us
		}
		var err error
		if f.limit, err = tsdb.ParseLimitParam(q.Get("limit"), 0); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(h.mergedLogs(f))
	}
}

// FleetTraceHandler serves the stitched cross-process trace view. Query
// params match /trace: session, shard, trace (hex), limit.
func (h *Hub) FleetTraceHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		f := trace.Filter{Session: q.Get("session"), Shard: q.Get("shard"), Trace: q.Get("trace")}
		if f.Trace != "" {
			if _, ok := trace.ParseID(f.Trace); !ok {
				http.Error(w, "bad trace id (want hex)", http.StatusBadRequest)
				return
			}
		}
		var err error
		if f.Limit, err = tsdb.ParseLimitParam(q.Get("limit"), 0); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(h.mergedTrace(f))
	}
}

// FleetStatusHandler serves the per-process streaming state (gridctl top's
// data source).
func (h *Hub) FleetStatusHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"fleetScore": h.FleetScore(),
			"silenceAge": h.SilenceAge(),
			"procs":      h.Status(),
		})
	}
}

// WriteSummaryMetrics renders the hub's own series — the fleet_* gauges and
// per-process obs_* counters (each counter series labelled {proc=...}) —
// without the relayed samples. This is what the host daemon folds into its
// regular /metrics page.
func (h *Hub) WriteSummaryMetrics(w io.Writer) {
	st := h.Status()
	fmt.Fprintf(w, "# TYPE fleet_procs gauge\nfleet_procs %d\n", len(st))
	fmt.Fprintf(w, "# TYPE fleet_last_batch_age_seconds gauge\nfleet_last_batch_age_seconds %g\n", h.SilenceAge())
	fmt.Fprintf(w, "# TYPE fleet_feedback_score gauge\nfleet_feedback_score %g\n", h.FleetScore())
	counters := []struct {
		name string
		get  func(*ProcStatus) uint64
	}{
		{"obs_batches_total", func(p *ProcStatus) uint64 { return p.Batches }},
		{"obs_logs_total", func(p *ProcStatus) uint64 { return p.Logs }},
		{"obs_spans_total", func(p *ProcStatus) uint64 { return p.Spans }},
		{"obs_missed_logs_total", func(p *ProcStatus) uint64 { return p.MissedLogs }},
		{"obs_missed_spans_total", func(p *ProcStatus) uint64 { return p.MissedSpans }},
	}
	for _, c := range counters {
		fmt.Fprintf(w, "# TYPE %s counter\n", c.name)
		for i := range st {
			fmt.Fprintf(w, "%s{proc=%q} %d\n", c.name, st[i].Proc, c.get(&st[i]))
		}
	}
}

// WriteFleetMetrics renders the full fleet metrics page: the hub summary,
// then every process's streamed samples re-labelled with their sender.
// Relayed series carry no # TYPE line (their types live on the origin
// pages; untyped is valid exposition).
func (h *Hub) WriteFleetMetrics(w io.Writer) {
	h.WriteSummaryMetrics(w)

	h.mu.Lock()
	names := make([]string, 0, len(h.procs))
	for n := range h.procs {
		names = append(names, n)
	}
	sort.Strings(names)
	type procSamples struct {
		proc    string
		samples []struct {
			name  string
			value float64
		}
	}
	pages := make([]procSamples, 0, len(names))
	for _, n := range names {
		ps := procSamples{proc: n}
		for _, s := range h.procs[n].metrics {
			ps.samples = append(ps.samples, struct {
				name  string
				value float64
			}{s.Name, s.Value})
		}
		pages = append(pages, ps)
	}
	h.mu.Unlock()

	for _, ps := range pages {
		for _, s := range ps.samples {
			fmt.Fprintf(w, "%s %g\n", relabel(s.name, ps.proc), s.value)
		}
	}
}

// FleetMetricsHandler serves WriteFleetMetrics over HTTP.
func (h *Hub) FleetMetricsHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		h.WriteFleetMetrics(w)
	}
}

// Mount registers the /fleet endpoints on a mux. /fleet/query appears
// only when the hub retains history.
func (h *Hub) Mount(mux *http.ServeMux) {
	mux.HandleFunc("/fleet/metrics", h.FleetMetricsHandler())
	mux.HandleFunc("/fleet/logs", h.FleetLogsHandler())
	mux.HandleFunc("/fleet/trace", h.FleetTraceHandler())
	mux.HandleFunc("/fleet/status", h.FleetStatusHandler())
	if h.cfg.History != nil {
		mux.HandleFunc("/fleet/query", tsdb.Handler(h.cfg.History, func() int64 { return time.Now().UnixMicro() }))
	}
}

// relabel injects a proc label into one exposition series name:
// `foo` becomes `foo{proc="x"}`, `foo{a="b"}` becomes `foo{proc="x",a="b"}`.
func relabel(series, proc string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i+1] + `proc=` + strconv.Quote(proc) + `,` + series[i+1:]
	}
	return series + `{proc=` + strconv.Quote(proc) + `}`
}
