// Command gridd runs the negotiation as separate OS processes over TCP: the
// Utility Agent as a daemon and each Customer Agent as a client, which is
// the "large open distributed industrial systems" deployment the paper's
// Discussion aims at.
//
// Server (waits for -customers clients, then negotiates):
//
//	gridd -serve :9340 -customers 10
//
// Sharded server (4 Concentrator Agents front the fleet, so the Utility
// Agent sees 4 aggregated bidders instead of 100):
//
//	gridd -serve :9340 -customers 100 -shards 4
//
// Clients (one per customer; names must be c01..cNN):
//
//	gridd -connect localhost:9340 -name c01 -seed 1
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	agentrt "loadbalance/internal/agent"
	"loadbalance/internal/bus"
	"loadbalance/internal/cluster"
	"loadbalance/internal/core"
	"loadbalance/internal/customeragent"
	"loadbalance/internal/message"
	"loadbalance/internal/protocol"
	"loadbalance/internal/sim"
	"loadbalance/internal/units"
	"loadbalance/internal/utilityagent"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gridd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gridd", flag.ContinueOnError)
	var (
		serve     = fs.String("serve", "", "listen address for the Utility Agent daemon")
		customers = fs.Int("customers", 10, "customer count the daemon waits for")
		shards    = fs.Int("shards", 1, "concentrator agents fronting the fleet (server mode; 1 = flat)")
		connect   = fs.String("connect", "", "daemon address to join as a Customer Agent")
		name      = fs.String("name", "", "customer name (client mode)")
		seed      = fs.Int64("seed", 1, "preference randomisation seed (client mode)")
		timeout   = fs.Duration("timeout", 2*time.Minute, "overall negotiation timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *serve != "" && *connect != "":
		return fmt.Errorf("-serve and -connect are mutually exclusive")
	case *serve != "":
		if *shards < 1 {
			return fmt.Errorf("-shards must be at least 1")
		}
		return runServer(*serve, *customers, *shards, *timeout)
	case *connect != "":
		if *name == "" {
			return fmt.Errorf("-connect requires -name")
		}
		return runClient(*connect, *name, *seed)
	default:
		return fmt.Errorf("pass -serve ADDR or -connect ADDR")
	}
}

// runServer hosts the UA and bridges remote customers onto a local bus.
func runServer(addr string, customers, shards int, timeout time.Duration) error {
	return serve(addr, customers, shards, timeout, nil)
}

// serve is runServer with an optional ready channel that receives the bound
// address (used by tests binding to :0). With shards > 1 it interposes that
// many Concentrator Agents between the Utility Agent and the TCP-bridged
// fleet: the UA negotiates with the concentrators on a private root bus,
// while each concentrator fans out to its shard of remote customers over the
// shared bridged bus by targeted send.
func serve(addr string, customers, shards int, timeout time.Duration, ready chan<- string) error {
	inner, err := bus.NewInProc(bus.Config{})
	if err != nil {
		return err
	}
	defer inner.Close()
	srv, err := bus.ListenAndServe(addr, inner)
	if err != nil {
		return err
	}
	defer srv.Close()
	if ready != nil {
		ready <- srv.Addr()
	}
	fmt.Printf("gridd: listening on %s, waiting for %d customers\n", srv.Addr(), customers)

	// Wait for the fleet to dial in.
	deadline := time.Now().Add(timeout)
	for len(inner.Agents()) < customers {
		if time.Now().After(deadline) {
			return fmt.Errorf("only %d of %d customers connected", len(inner.Agents()), customers)
		}
		time.Sleep(50 * time.Millisecond)
	}
	names := inner.Agents()
	fmt.Printf("gridd: customers connected: %v\n", names)

	loads := make(map[string]protocol.CustomerLoad, len(names))
	var totalPredicted units.Energy
	for _, n := range names {
		loads[n] = protocol.CustomerLoad{Predicted: 13.5, Allowed: 13.5}
		totalPredicted += 13.5
	}

	const session = "gridd"
	// The UA's round timeout; concentrators must answer upward well inside
	// it, so their own shard timeout is half of it.
	const roundTimeout = 5 * time.Second
	params := core.PaperParams()
	uaBus := bus.Bus(inner)
	uaLoads := loads
	var parent *bus.InProc
	if shards > 1 {
		// Root tier: the UA talks to concentrators on a private bus; the
		// concentrators reach their remote shards over the bridged bus.
		var err error
		parent, err = bus.NewInProc(bus.Config{})
		if err != nil {
			return err
		}
		defer parent.Close()
		topo, err := cluster.NewTopology(loads, shards)
		if err != nil {
			return err
		}
		tier, err := cluster.StartTier(parent, func(int) bus.Bus { return inner }, topo, cluster.TierConfig{
			SessionID:    session,
			RoundTimeout: roundTimeout / 2,
			InboxSize:    4 * customers,
		})
		if err != nil {
			return err
		}
		defer tier.Stop()
		params = cluster.RootParams(params)
		uaBus = parent
		uaLoads = topo.AggregateLoads()
		fmt.Printf("gridd: fronting the fleet with %d concentrators\n", topo.Shards())
	}

	ua, err := utilityagent.New(utilityagent.Config{
		SessionID: session,
		Window:    windowNow(),
		// Capacity set for the paper's 35% initial overuse.
		NormalUse:    totalPredicted.Scale(1 / 1.35),
		Loads:        uaLoads,
		Method:       utilityagent.MethodRewardTable,
		Params:       params,
		InitialSlope: 42.5,
		RoundTimeout: roundTimeout,
	})
	if err != nil {
		return err
	}
	rt, err := agentrt.Start("ua", uaBus, ua, 4*customers)
	if err != nil {
		return err
	}
	defer rt.Stop()

	select {
	case res := <-ua.Done():
		// Give the per-connection writers a moment to flush the awards and
		// the session-end broadcast before the deferred teardown cuts the
		// TCP connections.
		time.Sleep(300 * time.Millisecond)
		stats := inner.Stats()
		if parent != nil {
			// Count both tiers, so flat and sharded runs compare fairly.
			p := parent.Stats()
			stats.Sent += p.Sent
			stats.Delivered += p.Delivered
			stats.Dropped += p.Dropped
			stats.Rejected += p.Rejected
			fmt.Printf("note: awards below are per-concentrator aggregates; each customer's own award was delivered to its process\n")
		}
		full := &core.Result{Result: res, Bus: stats}
		fmt.Print(sim.RenderResult(full))
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("negotiation timed out after %v", timeout)
	}
}

// runClient joins as one Customer Agent and reacts until the session ends.
func runClient(addr, name string, seed int64) error {
	cli, err := bus.Dial(addr, name)
	if err != nil {
		return err
	}
	defer cli.Close()

	prefs, err := clientPreferences(seed)
	if err != nil {
		return err
	}
	ca, err := customeragent.New(name, prefs, customeragent.StrategyGreedy)
	if err != nil {
		return err
	}
	fmt.Printf("gridd: %s connected to %s\n", name, addr)

	for env := range cli.Inbox() {
		reply, ok, err := ca.React(env)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridd: %s: %v\n", name, err)
			continue
		}
		if ok {
			out, err := message.NewEnvelope(name, env.From, env.Session, reply)
			if err != nil {
				return err
			}
			if err := cli.Send(out); err != nil {
				return err
			}
		}
		if env.Kind == message.KindSessionEnd {
			if award, got := ca.AwardFor(env.Session); got {
				fmt.Printf("gridd: %s awarded cut-down %.1f for reward %.2f\n",
					name, award.CutDown, award.Reward)
			} else {
				fmt.Printf("gridd: %s: session ended without award\n", name)
			}
			return nil
		}
	}
	return fmt.Errorf("connection closed before session end")
}

// clientPreferences derives a deterministic preference table from the seed:
// the paper customer's table scaled by a seed-dependent factor in [0.8, 1.6].
func clientPreferences(seed int64) (customeragent.Preferences, error) {
	return core.ScaledPaperPreferences(0.8 + float64(seed%9)/10)
}

// windowNow returns a 2-hour negotiation window starting one hour from now.
func windowNow() units.Interval {
	start := time.Now().Add(time.Hour).Truncate(time.Minute)
	return units.Interval{Start: start, End: start.Add(2 * time.Hour)}
}
