package producer

import (
	"errors"
	"testing"
	"time"

	"loadbalance/internal/message"
	"loadbalance/internal/units"
)

func standard(t *testing.T) *Agent {
	t.Helper()
	a, err := Standard(100, 1, 4, 60)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewValidation(t *testing.T) {
	if _, err := New("", []Block{{Name: "b", Capacity: 1}}); err == nil {
		t.Fatal("empty name should fail")
	}
	if _, err := New("p", nil); !errors.Is(err, ErrNoBlocks) {
		t.Fatal("no blocks should fail")
	}
	if _, err := New("p", []Block{{Name: "b", Capacity: 0}}); !errors.Is(err, ErrBadCapacity) {
		t.Fatal("zero capacity should fail")
	}
	if _, err := New("p", []Block{{Name: "b", Capacity: 1, CostPerKWh: -1}}); !errors.Is(err, ErrBadCost) {
		t.Fatal("negative cost should fail")
	}
	if _, err := Standard(100, 5, 1, 60); !errors.Is(err, ErrBadCost) {
		t.Fatal("peak below base should fail")
	}
}

func TestMeritOrderSorting(t *testing.T) {
	a, err := New("p", []Block{
		{Name: "peaker", Capacity: 50, CostPerKWh: 4},
		{Name: "hydro", Capacity: 100, CostPerKWh: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.NormalCapacity(); got != 100 {
		t.Fatalf("normal capacity = %v, want cheapest block 100", got)
	}
	if got := a.TotalCapacity(); got != 150 {
		t.Fatalf("total = %v, want 150", got)
	}
}

func TestCostOf(t *testing.T) {
	a := standard(t)
	tests := []struct {
		name   string
		demand units.Energy
		want   float64
	}{
		{name: "zero", demand: 0, want: 0},
		{name: "within base", demand: 80, want: 80},
		{name: "exactly base", demand: 100, want: 100},
		{name: "into peak", demand: 135, want: 100 + 35*4},
		{name: "beyond stack", demand: 200, want: 100 + 60*4 + 40*4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := a.CostOf(tt.demand); !units.NearlyEqual(got, tt.want, 1e-9) {
				t.Fatalf("CostOf(%v) = %v, want %v", tt.demand, got, tt.want)
			}
		})
	}
}

func TestMarginalCostAt(t *testing.T) {
	a := standard(t)
	if got := a.MarginalCostAt(50); got != 1 {
		t.Fatalf("marginal at 50 = %v, want base 1", got)
	}
	if got := a.MarginalCostAt(100); got != 4 {
		t.Fatalf("marginal at 100 = %v, want peak 4", got)
	}
	if got := a.MarginalCostAt(999); got != 4 {
		t.Fatalf("marginal beyond stack = %v, want 4", got)
	}
}

func TestPeakPremium(t *testing.T) {
	a := standard(t)
	// Serving 135: peak part 35 kWh costs 4 instead of 1 → premium 105.
	if got := a.PeakPremium(135); !units.NearlyEqual(got, 105, 1e-9) {
		t.Fatalf("premium = %v, want 105", got)
	}
	if got := a.PeakPremium(90); got != 0 {
		t.Fatalf("premium below capacity = %v, want 0", got)
	}
}

func TestHandleInfoRequest(t *testing.T) {
	a := standard(t)
	start := time.Date(1998, 1, 20, 17, 0, 0, 0, time.UTC)
	win := message.Window{Start: start, End: start.Add(2 * time.Hour)}

	reply, err := a.HandleInfoRequest(message.InfoRequest{Topic: TopicCapacity, Window: win})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Values["normal_kwh"] != 100 || reply.Values["total_kwh"] != 160 {
		t.Fatalf("capacity reply = %+v", reply)
	}
	reply, err = a.HandleInfoRequest(message.InfoRequest{Topic: TopicCost, Window: win})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Values["base_cost_per_kwh"] != 1 || reply.Values["peak_cost_per_kwh"] != 4 {
		t.Fatalf("cost reply = %+v", reply)
	}
	if _, err := a.HandleInfoRequest(message.InfoRequest{Topic: "weather", Window: win}); !errors.Is(err, ErrUnknownTopic) {
		t.Fatalf("unknown topic error = %v", err)
	}
	if _, err := a.HandleInfoRequest(message.InfoRequest{Window: win}); err == nil {
		t.Fatal("invalid request should fail")
	}
	if err := reply.Validate(); err != nil {
		t.Fatalf("reply invalid: %v", err)
	}
}
