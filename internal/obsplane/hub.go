// Package obsplane is the fleet observability plane: every gridd process —
// workers, standbys, serve replicas — streams its observability state
// (metric samples, structured log events, completed trace spans) to the
// root over the v2 binary wire protocol, and the root merges the batches
// into one labelled registry served on the /fleet endpoints.
//
// The plane is explicitly lossy-but-accounted: emitters drain bounded
// rings through a bounded resend window, shed under backpressure, and ship
// Missed counters for everything a ring wrapped past; the hub keeps each
// process's state in bounded per-process rings. Correctness of the grid
// never depends on the plane — it is an operator surface, built from the
// same bus, message and ring machinery as the data path.
package obsplane

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"loadbalance/internal/bus"
	"loadbalance/internal/health"
	"loadbalance/internal/message"
	"loadbalance/internal/trace"
	"loadbalance/internal/tsdb"
)

// hubName is the hub's agent name on its control bus; emitters address
// their envelopes to it.
const hubName = "obshub"

// obsSession is the session id stamped on every obs-plane envelope.
const obsSession = "obsplane"

// ErrClosed is returned by operations on a closed hub.
var ErrClosed = errors.New("obsplane: closed")

// HubConfig parameterises the fleet root's observability hub.
type HubConfig struct {
	// Addr is the TCP listen address emitters dial (":0" for tests).
	Addr string
	// LogRing bounds one process's merged log events held by the hub
	// (default 2048).
	LogRing int
	// SpanRing bounds one process's spans held by the hub (default 8192).
	SpanRing int
	// MaxFrame bounds one wire frame (default bus.DefaultMaxFrame).
	MaxFrame int
	// Logger receives the hub's own health events (default health.Default()).
	Logger *health.Logger
	// History, when set, retains every streamed metric sample as a
	// proc-labeled series (stamped at arrival), so the root answers
	// /fleet/query range queries for the whole fleet. Nil keeps the hub
	// instantaneous-only.
	History *tsdb.Store
}

// withDefaults fills unset fields.
func (c HubConfig) withDefaults() HubConfig {
	if c.LogRing <= 0 {
		c.LogRing = 2048
	}
	if c.SpanRing <= 0 {
		c.SpanRing = 8192
	}
	if c.Logger == nil {
		c.Logger = health.Default()
	}
	return c
}

// fleetLog is one streamed log event with its sender's identity attached.
type fleetLog struct {
	proc string
	ev   message.ObsLogEvent
}

// procState is one subscribed process's merged observability state.
type procState struct {
	proc string
	role string
	addr string

	lastSeq   uint64
	lastBatch time.Time // arrival clock for the silence gauge, never served on a replayed surface
	closed    bool      // the process flushed with Closing: excluded from silence detection

	batches, logs, spans    uint64
	missedLogs, missedSpans uint64
	duplicates              uint64
	metrics                 []message.ObsMetricSample // latest full sample set
	logRing                 []fleetLog
	logNext                 int
	logDropped              uint64
	spanRing                []trace.Record
	spanNext                int
	spanDropped             uint64
}

// sample returns the process's latest value for one metric series name.
func (p *procState) sample(name string) (float64, bool) {
	for i := range p.metrics {
		if p.metrics[i].Name == name {
			return p.metrics[i].Value, true
		}
	}
	return 0, false
}

// Hub is the root-side receiver: it listens for emitters, merges their
// batches and serves the fleet view. Close it to release the listener and
// the fleet gauges.
type Hub struct {
	cfg   HubConfig
	inner *bus.InProc
	srv   *bus.Server
	inbox <-chan message.Envelope

	mu     sync.Mutex
	procs  map[string]*procState
	closed bool

	done chan struct{}
}

// StartHub listens on cfg.Addr and merges emitter streams. It registers the
// fleet_* gauges (silence age, fleet score, process count) with the health
// registry so the root's alert engine can reference them; Close unregisters
// them.
func StartHub(cfg HubConfig) (*Hub, error) {
	cfg = cfg.withDefaults()
	inner, err := bus.NewInProc(bus.Config{})
	if err != nil {
		return nil, err
	}
	srv, err := bus.ListenAndServeConfig(cfg.Addr, inner, bus.ServerConfig{MaxFrame: cfg.MaxFrame})
	if err != nil {
		inner.Close()
		return nil, err
	}
	inbox, err := inner.Register(hubName, 1024)
	if err != nil {
		srv.Close()
		inner.Close()
		return nil, err
	}
	h := &Hub{
		cfg:   cfg,
		inner: inner,
		srv:   srv,
		inbox: inbox,
		procs: make(map[string]*procState),
		done:  make(chan struct{}),
	}
	health.RegisterGauge("fleet_procs", func() float64 { return float64(h.procCount()) })
	health.RegisterGauge("fleet_last_batch_age_seconds", h.SilenceAge)
	health.RegisterGauge("fleet_feedback_score", h.FleetScore)
	go h.controlLoop()
	return h, nil
}

// Addr returns the hub's bound listen address.
func (h *Hub) Addr() string { return h.srv.Addr() }

// WireStats exposes the hub transport's frame counters for the root's
// /metrics page.
func (h *Hub) WireStats() bus.WireStats { return h.srv.WireStats() }

// controlLoop merges subscribe and batch messages from emitters. Acks are
// sent outside the registry lock.
func (h *Hub) controlLoop() {
	defer close(h.done)
	for env := range h.inbox {
		p, err := env.Decode()
		if err != nil {
			continue
		}
		switch m := p.(type) {
		case message.ObsSubscribe:
			h.subscribe(env.From, m)
		case message.ObsBatch:
			h.merge(env.From, m)
		}
	}
}

// ack confirms the highest merged batch to one emitter so it can trim its
// resend buffer. Delivery failure means the connection died; the emitter
// re-subscribes on its next one and resends.
func (h *Hub) ack(conn string, seq uint64) {
	if seq == 0 {
		return
	}
	env, err := message.NewEnvelope(hubName, conn, obsSession, message.ObsAck{Seq: seq})
	if err != nil {
		return
	}
	_ = h.inner.Send(env)
}

// subscribe registers (or re-registers) a process. The connection name is
// forced by the wire handshake to the emitter's proc label, so From is the
// registry key. Re-subscription after a reconnect keeps the merged state
// and acks the last applied batch.
func (h *Hub) subscribe(conn string, m message.ObsSubscribe) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	p := h.procs[conn]
	if p == nil {
		p = &procState{
			proc:     conn,
			logRing:  make([]fleetLog, 0, h.cfg.LogRing),
			spanRing: make([]trace.Record, 0, h.cfg.SpanRing),
		}
		h.procs[conn] = p
	}
	p.role, p.addr = m.Role, m.Addr
	p.lastBatch = time.Now()
	p.closed = false
	lastSeq := p.lastSeq
	h.mu.Unlock()
	h.cfg.Logger.Log(health.Info, "obsplane", "process subscribed",
		health.Str("proc", conn), health.Str("role", m.Role), health.Str("addr", m.Addr))
	h.ack(conn, lastSeq)
}

// merge folds one batch into the process's state. Duplicate sequences
// (resends racing an ack) are re-acked but not merged twice.
func (h *Hub) merge(conn string, m message.ObsBatch) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	p := h.procs[conn]
	if p == nil {
		// A batch before any subscription: a protocol error from a v2 peer,
		// but harmless — register a bare identity rather than losing data.
		p = &procState{
			proc:     conn,
			logRing:  make([]fleetLog, 0, h.cfg.LogRing),
			spanRing: make([]trace.Record, 0, h.cfg.SpanRing),
		}
		h.procs[conn] = p
	}
	if m.Seq <= p.lastSeq {
		p.duplicates++
		h.mu.Unlock()
		h.ack(conn, m.Seq)
		return
	}
	p.lastSeq = m.Seq
	p.lastBatch = time.Now()
	p.closed = m.Closing
	p.batches++
	p.missedLogs += m.MissedLogs
	p.missedSpans += m.MissedSpans
	if m.Metrics != nil {
		p.metrics = m.Metrics
		if h.cfg.History != nil {
			ts := time.Now().UnixMicro()
			for _, s := range m.Metrics {
				h.cfg.History.Append(relabel(s.Name, conn), ts, s.Value)
			}
		}
	}
	for _, ev := range m.Logs {
		pushRing(&p.logRing, &p.logNext, &p.logDropped, h.cfg.LogRing, fleetLog{proc: conn, ev: ev})
		p.logs++
	}
	for _, sp := range m.Spans {
		rec := trace.Record{
			Trace:   sp.Trace,
			Span:    sp.Span,
			Parent:  sp.Parent,
			Name:    sp.Name,
			Proc:    conn,
			Agent:   sp.Agent,
			Session: sp.Session,
			Shard:   sp.Shard,
			StartUs: sp.StartUs,
			DurUs:   sp.DurUs,
		}
		pushRing(&p.spanRing, &p.spanNext, &p.spanDropped, h.cfg.SpanRing, rec)
		p.spans++
	}
	h.mu.Unlock()
	h.ack(conn, m.Seq)
}

// pushRing appends into a bounded ring, overwriting the oldest entry once
// the ring is full — the same wrap discipline the trace and log rings use.
func pushRing[T any](ring *[]T, next *int, dropped *uint64, capHint int, v T) {
	if len(*ring) < capHint {
		*ring = append(*ring, v)
	} else {
		(*ring)[*next] = v
		*dropped++
	}
	*next++
	if *next == capHint {
		*next = 0
	}
}

// ringOrdered returns a ring's entries oldest-first.
func ringOrdered[T any](ring []T, next, capHint int) []T {
	out := make([]T, 0, len(ring))
	if len(ring) < capHint {
		return append(out, ring...)
	}
	out = append(out, ring[next:]...)
	return append(out, ring[:next]...)
}

// procCount reports subscribed processes (closed ones included — they
// stream no more but their state is still served).
func (h *Hub) procCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.procs)
}

// SilenceAge is the fleet's worst last-batch age in seconds over processes
// that have not announced a clean close — the gauge behind the built-in
// worker_silent alert rule. No subscribed processes means 0 (nothing to be
// silent).
func (h *Hub) SilenceAge() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	worst := 0.0
	for _, p := range h.procs {
		if p.closed || p.lastBatch.IsZero() {
			continue
		}
		if age := time.Since(p.lastBatch).Seconds(); age > worst {
			worst = age
		}
	}
	return worst
}

// FleetScore folds the per-process feedback scores (the feedback_score
// sample each live process streams) into one fleet number: their mean over
// reporting processes, 0 when nothing reports a score yet.
func (h *Hub) FleetScore() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	names := make([]string, 0, len(h.procs))
	for n, p := range h.procs {
		if _, ok := p.sample("feedback_score"); ok {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return 0
	}
	// Sorted accumulation keeps the fold deterministic across map orders.
	sort.Strings(names)
	sum := 0.0
	for _, n := range names {
		v, _ := h.procs[n].sample("feedback_score")
		sum += v
	}
	return sum / float64(len(names))
}

// ProcStatus is one process's row in the fleet status document — what
// gridctl top renders.
type ProcStatus struct {
	Proc         string  `json:"proc"`
	Role         string  `json:"role"`
	Addr         string  `json:"addr,omitempty"`
	Closed       bool    `json:"closed,omitempty"`
	LastSeq      uint64  `json:"lastSeq"`
	LastBatchAge float64 `json:"lastBatchAgeSeconds"`
	Batches      uint64  `json:"batches"`
	Logs         uint64  `json:"logs"`
	Spans        uint64  `json:"spans"`
	MissedLogs   uint64  `json:"missedLogs,omitempty"`
	MissedSpans  uint64  `json:"missedSpans,omitempty"`
	Score        float64 `json:"score"`
	Lag          float64 `json:"lag"`
	TickP95      float64 `json:"tickP95Seconds"`
}

// Status snapshots every process's streaming state, sorted by proc label.
func (h *Hub) Status() []ProcStatus {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]ProcStatus, 0, len(h.procs))
	for _, p := range h.procs {
		st := ProcStatus{
			Proc:        p.proc,
			Role:        p.role,
			Addr:        p.addr,
			Closed:      p.closed,
			LastSeq:     p.lastSeq,
			Batches:     p.batches,
			Logs:        p.logs,
			Spans:       p.spans,
			MissedLogs:  p.missedLogs,
			MissedSpans: p.missedSpans,
		}
		if !p.lastBatch.IsZero() {
			st.LastBatchAge = time.Since(p.lastBatch).Seconds()
		}
		st.Score, _ = p.sample("feedback_score")
		st.Lag, _ = p.sample("replica_lag_records")
		st.TickP95, _ = p.sample("grid_tick_seconds_p95")
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Proc < out[j].Proc })
	return out
}

// Close tears the listener down and unregisters the fleet gauges.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	h.mu.Unlock()
	health.UnregisterGauge("fleet_procs")
	health.UnregisterGauge("fleet_last_batch_age_seconds")
	health.UnregisterGauge("fleet_feedback_score")
	h.srv.Close()
	h.inner.Close() // closes the control inbox; controlLoop exits
	<-h.done
}

// String implements fmt.Stringer for log lines.
func (h *Hub) String() string { return fmt.Sprintf("obsplane hub on %s", h.Addr()) }
