package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// seedModule materializes a minimal module with one package at relPkg
// containing src, and returns the module root.
func seedModule(t *testing.T, relPkg, src string) string {
	t.Helper()
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module seeded\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, filepath.FromSlash(relPkg))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "code.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return root
}

// TestSeededViolationFailsTheBuild is the negative fixture the acceptance
// criteria ask for: prove that the exact CI invocation (gridlint over a
// tree containing a violation) exits non-zero and names the violation. A
// time.Now inside internal/protocol is the seeded bug — the deterministic
// replay surface reading the wall clock.
func TestSeededViolationFailsTheBuild(t *testing.T) {
	root := seedModule(t, "internal/protocol", `package protocol

import "time"

// Stamp leaks the wall clock into the replay surface.
func Stamp() time.Time {
	return time.Now()
}
`)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", root, "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("want exit 1 on seeded violation, got %d (stderr: %s)", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "walltime") || !strings.Contains(out, "time.Now") {
		t.Fatalf("finding should name the analyzer and the call, got:\n%s", out)
	}
}

// TestSeededViolationJSONMode checks the -json contract: one valid JSON
// object per line with the documented keys.
func TestSeededViolationJSONMode(t *testing.T) {
	root := seedModule(t, "internal/core", `package core

import "math/rand"

func Draw() float64 { return rand.Float64() }
`)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "-C", root, "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("want exit 1, got %d (stderr: %s)", code, stderr.String())
	}
	sc := bufio.NewScanner(bytes.NewReader(stdout.Bytes()))
	lines := 0
	for sc.Scan() {
		lines++
		var f struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Message  string `json:"message"`
		}
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatalf("line %d is not valid JSON: %v: %s", lines, err, sc.Text())
		}
		if f.Analyzer == "" || f.File == "" || f.Line == 0 || f.Message == "" {
			t.Fatalf("incomplete JSON finding: %s", sc.Text())
		}
	}
	if lines != 1 {
		t.Fatalf("want exactly 1 JSON finding line, got %d:\n%s", lines, stdout.String())
	}
}

// TestAnnotatedSeedPasses proves the escape hatch: the same violation with
// a well-formed annotation exits 0.
func TestAnnotatedSeedPasses(t *testing.T) {
	root := seedModule(t, "internal/protocol", `package protocol

import "time"

func Stamp() time.Time {
	return time.Now() //gridlint:allow walltime(seeded fixture: genuine measurement site)
}
`)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", root, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("want exit 0 with annotation, got %d:\n%s%s", code, stdout.String(), stderr.String())
	}
}

// TestMalformedAnnotationStillFails proves a broken escape hatch cannot
// silence the check it was escaping.
func TestMalformedAnnotationStillFails(t *testing.T) {
	root := seedModule(t, "internal/protocol", `package protocol

import "time"

func Stamp() time.Time {
	return time.Now() //gridlint:allow walltime
}
`)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", root, "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("want exit 1 on malformed annotation, got %d", code)
	}
	out := stdout.String()
	if !strings.Contains(out, "malformed annotation") || !strings.Contains(out, "walltime") {
		t.Fatalf("want both the malformed-annotation and the walltime finding, got:\n%s", out)
	}
}

// TestCleanTreeExitsZero runs the exact CI invocation against this repo:
// exit 0 and no output is the contract the CI step depends on.
func TestCleanTreeExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole repo")
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", "../..", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("repo must lint clean, got exit %d:\n%s%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("clean run must print nothing, got:\n%s", stdout.String())
	}
}

func TestExitCodeContract(t *testing.T) {
	var stdout, stderr bytes.Buffer
	// Operational error: pattern that matches nothing loadable.
	if code := run([]string{"-C", t.TempDir(), "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("want exit 2 for unloadable patterns, got %d", code)
	}
	// Bad flag.
	if code := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("want exit 2 for bad flags, got %d", code)
	}
	// -list exits 0 and names every analyzer.
	stdout.Reset()
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("want exit 0 for -list, got %d", code)
	}
	for _, name := range []string{"floatmaprange", "walltime", "globalrand", "structuredlog", "lockedsend"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, stdout.String())
		}
	}
}
