package world

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// DeviceKind enumerates the domestic device categories the simulator models.
// The mix follows the paper's framing that customers "all have devices that
// consume electricity to various degrees" (Section 2), with flexibility
// concentrated in thermal storage (heating, hot water) and deferrable white
// goods — the loads demand-response programmes actually shift.
type DeviceKind int

// Device kinds.
const (
	KindSpaceHeating DeviceKind = iota + 1
	KindWaterHeater
	KindWhiteGoods // washing machine, dryer, dishwasher
	KindCooking
	KindLighting
	KindRefrigeration
	KindElectronics
	KindEVCharger
)

// String renders the kind name.
func (k DeviceKind) String() string {
	switch k {
	case KindSpaceHeating:
		return "space_heating"
	case KindWaterHeater:
		return "water_heater"
	case KindWhiteGoods:
		return "white_goods"
	case KindCooking:
		return "cooking"
	case KindLighting:
		return "lighting"
	case KindRefrigeration:
		return "refrigeration"
	case KindElectronics:
		return "electronics"
	case KindEVCharger:
		return "ev_charger"
	default:
		return fmt.Sprintf("device_kind(%d)", int(k))
	}
}

// Device is one electric load in a household.
type Device struct {
	Kind DeviceKind
	// RatedKW is the peak draw of the device.
	RatedKW float64
	// Flexible is the fraction of the device's draw that can be shed or
	// deferred during a peak without hard loss (thermal inertia, deferral).
	Flexible float64
	// ComfortCost is the customer's subjective cost (money-equivalent per
	// shed kWh) of cutting this device; it drives required rewards.
	ComfortCost float64
}

// standardDevices returns the device fleet for a household with the given
// occupant count; rng perturbs the ratings so households differ.
func standardDevices(occupants int, hasEV bool, rng *rand.Rand) []Device {
	jitter := func(v, rel float64) float64 {
		return v * (1 + rel*(rng.Float64()*2-1))
	}
	occ := float64(occupants)
	devices := []Device{
		{Kind: KindSpaceHeating, RatedKW: jitter(1.2+0.5*occ, 0.25), Flexible: 0.6, ComfortCost: jitter(1.2, 0.4)},
		{Kind: KindWaterHeater, RatedKW: jitter(1.5+0.3*occ, 0.2), Flexible: 0.8, ComfortCost: jitter(0.6, 0.4)},
		{Kind: KindWhiteGoods, RatedKW: jitter(0.4+0.2*occ, 0.3), Flexible: 0.9, ComfortCost: jitter(0.4, 0.4)},
		{Kind: KindCooking, RatedKW: jitter(0.5+0.25*occ, 0.3), Flexible: 0.1, ComfortCost: jitter(3.0, 0.3)},
		{Kind: KindLighting, RatedKW: jitter(0.15+0.08*occ, 0.3), Flexible: 0.3, ComfortCost: jitter(1.5, 0.3)},
		{Kind: KindRefrigeration, RatedKW: jitter(0.15, 0.2), Flexible: 0.25, ComfortCost: jitter(0.8, 0.3)},
		{Kind: KindElectronics, RatedKW: jitter(0.1+0.1*occ, 0.4), Flexible: 0.2, ComfortCost: jitter(2.0, 0.3)},
	}
	if hasEV {
		devices = append(devices, Device{
			Kind: KindEVCharger, RatedKW: jitter(3.3, 0.15), Flexible: 0.95, ComfortCost: jitter(0.3, 0.4),
		})
	}
	return devices
}

// usageFactor returns the fraction of rated power a device draws at the
// given time under the given weather — the behavioural load shape.
func usageFactor(kind DeviceKind, t time.Time, w Weather, rng *rand.Rand) float64 {
	h := float64(t.Hour()) + float64(t.Minute())/60
	noise := 1 + 0.08*rng.NormFloat64()
	base := 0.0
	switch kind {
	case KindSpaceHeating:
		// Proportional to heating degree; thermostat setback overnight.
		base = w.HeatingDegree() / 25
		if h < 6 || h >= 23 {
			base *= 0.6
		}
	case KindWaterHeater:
		// Morning showers and evening dishes.
		base = 0.15 + 0.55*bump(h, 7, 1.4) + 0.45*bump(h, 19, 2.0)
	case KindWhiteGoods:
		// Evening-heavy, some daytime running.
		base = 0.05 + 0.35*bump(h, 18.5, 2.5) + 0.10*bump(h, 11, 3)
	case KindCooking:
		base = 0.7*bump(h, 17.8, 1.0) + 0.3*bump(h, 7.5, 0.8) + 0.15*bump(h, 12.3, 0.8)
	case KindLighting:
		// On when dark: early morning and evening, amplified by cloud.
		dark := bump(h, 7, 1.5) + bump(h, 20, 3)
		base = (0.1 + 0.9*dark) * (0.6 + 0.4*w.CloudCover)
	case KindRefrigeration:
		base = 0.55 + 0.05*math.Sin(2*math.Pi*h/24)
	case KindElectronics:
		base = 0.15 + 0.55*bump(h, 20.5, 2.5)
	case KindEVCharger:
		// Plug-in on arriving home.
		base = 0.9 * bump(h, 18.5, 1.8)
	}
	v := base * noise
	return clamp01(v)
}

// bump is a smooth unimodal pulse centred at c (hours) with width w (hours),
// wrapping around midnight.
func bump(h, c, w float64) float64 {
	d := math.Abs(h - c)
	if d > 12 {
		d = 24 - d
	}
	return math.Exp(-(d * d) / (2 * w * w))
}
