// Command gridd runs the negotiation as separate OS processes over TCP: the
// Utility Agent as a daemon and each Customer Agent as a client, which is
// the "large open distributed industrial systems" deployment the paper's
// Discussion aims at.
//
// Server (waits for -customers clients, then negotiates):
//
//	gridd -serve :9340 -customers 10
//
// Clients (one per customer; names must be c01..cNN):
//
//	gridd -connect localhost:9340 -name c01 -seed 1
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	agentrt "loadbalance/internal/agent"
	"loadbalance/internal/bus"
	"loadbalance/internal/core"
	"loadbalance/internal/customeragent"
	"loadbalance/internal/message"
	"loadbalance/internal/protocol"
	"loadbalance/internal/sim"
	"loadbalance/internal/units"
	"loadbalance/internal/utilityagent"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gridd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gridd", flag.ContinueOnError)
	var (
		serve     = fs.String("serve", "", "listen address for the Utility Agent daemon")
		customers = fs.Int("customers", 10, "customer count the daemon waits for")
		connect   = fs.String("connect", "", "daemon address to join as a Customer Agent")
		name      = fs.String("name", "", "customer name (client mode)")
		seed      = fs.Int64("seed", 1, "preference randomisation seed (client mode)")
		timeout   = fs.Duration("timeout", 2*time.Minute, "overall negotiation timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *serve != "" && *connect != "":
		return fmt.Errorf("-serve and -connect are mutually exclusive")
	case *serve != "":
		return runServer(*serve, *customers, *timeout)
	case *connect != "":
		if *name == "" {
			return fmt.Errorf("-connect requires -name")
		}
		return runClient(*connect, *name, *seed)
	default:
		return fmt.Errorf("pass -serve ADDR or -connect ADDR")
	}
}

// runServer hosts the UA and bridges remote customers onto a local bus.
func runServer(addr string, customers int, timeout time.Duration) error {
	return serve(addr, customers, timeout, nil)
}

// serve is runServer with an optional ready channel that receives the bound
// address (used by tests binding to :0).
func serve(addr string, customers int, timeout time.Duration, ready chan<- string) error {
	inner, err := bus.NewInProc(bus.Config{})
	if err != nil {
		return err
	}
	defer inner.Close()
	srv, err := bus.ListenAndServe(addr, inner)
	if err != nil {
		return err
	}
	defer srv.Close()
	if ready != nil {
		ready <- srv.Addr()
	}
	fmt.Printf("gridd: listening on %s, waiting for %d customers\n", srv.Addr(), customers)

	// Wait for the fleet to dial in.
	deadline := time.Now().Add(timeout)
	for len(inner.Agents()) < customers {
		if time.Now().After(deadline) {
			return fmt.Errorf("only %d of %d customers connected", len(inner.Agents()), customers)
		}
		time.Sleep(50 * time.Millisecond)
	}
	names := inner.Agents()
	fmt.Printf("gridd: customers connected: %v\n", names)

	loads := make(map[string]protocol.CustomerLoad, len(names))
	var totalPredicted units.Energy
	for _, n := range names {
		loads[n] = protocol.CustomerLoad{Predicted: 13.5, Allowed: 13.5}
		totalPredicted += 13.5
	}
	ua, err := utilityagent.New(utilityagent.Config{
		SessionID: "gridd",
		Window:    windowNow(),
		// Capacity set for the paper's 35% initial overuse.
		NormalUse:    totalPredicted.Scale(1 / 1.35),
		Loads:        loads,
		Method:       utilityagent.MethodRewardTable,
		Params:       core.PaperParams(),
		InitialSlope: 42.5,
		RoundTimeout: 5 * time.Second,
	})
	if err != nil {
		return err
	}
	rt, err := agentrt.Start("ua", inner, ua, 4*customers)
	if err != nil {
		return err
	}
	defer rt.Stop()

	select {
	case res := <-ua.Done():
		// Give the per-connection writers a moment to flush the awards and
		// the session-end broadcast before the deferred teardown cuts the
		// TCP connections.
		time.Sleep(300 * time.Millisecond)
		full := &core.Result{Result: res, Bus: inner.Stats()}
		fmt.Print(sim.RenderResult(full))
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("negotiation timed out after %v", timeout)
	}
}

// runClient joins as one Customer Agent and reacts until the session ends.
func runClient(addr, name string, seed int64) error {
	cli, err := bus.Dial(addr, name)
	if err != nil {
		return err
	}
	defer cli.Close()

	prefs, err := clientPreferences(seed)
	if err != nil {
		return err
	}
	ca, err := customeragent.New(name, prefs, customeragent.StrategyGreedy)
	if err != nil {
		return err
	}
	fmt.Printf("gridd: %s connected to %s\n", name, addr)

	for env := range cli.Inbox() {
		reply, ok, err := ca.React(env)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridd: %s: %v\n", name, err)
			continue
		}
		if ok {
			out, err := message.NewEnvelope(name, env.From, env.Session, reply)
			if err != nil {
				return err
			}
			if err := cli.Send(out); err != nil {
				return err
			}
		}
		if env.Kind == message.KindSessionEnd {
			if award, got := ca.AwardFor(env.Session); got {
				fmt.Printf("gridd: %s awarded cut-down %.1f for reward %.2f\n",
					name, award.CutDown, award.Reward)
			} else {
				fmt.Printf("gridd: %s: session ended without award\n", name)
			}
			return nil
		}
	}
	return fmt.Errorf("connection closed before session end")
}

// clientPreferences derives a deterministic preference table from the seed:
// the paper customer's table scaled by a seed-dependent factor in [0.8, 1.6].
func clientPreferences(seed int64) (customeragent.Preferences, error) {
	factor := 0.8 + float64(seed%9)/10
	levels := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	required := map[float64]float64{
		0: 0, 0.1: 4 * factor, 0.2: 8 * factor, 0.3: 13 * factor, 0.4: 21 * factor,
	}
	p, err := customeragent.NewPreferences(levels, required)
	if err != nil {
		return customeragent.Preferences{}, err
	}
	return p.WithExpectedUse(13.5), nil
}

// windowNow returns a 2-hour negotiation window starting one hour from now.
func windowNow() units.Interval {
	start := time.Now().Add(time.Hour).Truncate(time.Minute)
	return units.Interval{Start: start, End: start.Add(2 * time.Hour)}
}
