package cluster

import (
	"errors"
	"fmt"
	"sort"

	"loadbalance/internal/protocol"
	"loadbalance/internal/units"
)

// Errors reported by the package.
var (
	ErrBadTopology = errors.New("cluster: invalid topology")
	ErrBadConfig   = errors.New("cluster: invalid configuration")
	ErrTimeout     = errors.New("cluster: negotiation timed out")
)

// Topology is a deterministic K-shard partition of a customer fleet: sorted
// customer names split into contiguous blocks whose sizes differ by at most
// one. Shard counts above the fleet size yield empty shards, whose
// concentrators simply bid a cut-down of 0 every round.
type Topology struct {
	shards [][]string
	loads  map[string]protocol.CustomerLoad
}

// NewTopology partitions the fleet described by loads into the given number
// of shards.
func NewTopology(loads map[string]protocol.CustomerLoad, shards int) (Topology, error) {
	if shards < 1 {
		return Topology{}, fmt.Errorf("%w: shard count %d", ErrBadTopology, shards)
	}
	names := make([]string, 0, len(loads))
	for n := range loads {
		if n == "" {
			return Topology{}, fmt.Errorf("%w: unnamed customer", ErrBadTopology)
		}
		names = append(names, n)
	}
	sort.Strings(names)
	t := Topology{
		shards: make([][]string, shards),
		loads:  make(map[string]protocol.CustomerLoad, len(loads)),
	}
	for n, l := range loads {
		t.loads[n] = l
	}
	base, extra := len(names)/shards, len(names)%shards
	at := 0
	for i := range t.shards {
		size := base
		if i < extra {
			size++
		}
		t.shards[i] = names[at : at+size]
		at += size
	}
	return t, nil
}

// Shards returns the number of shards.
func (t Topology) Shards() int { return len(t.shards) }

// FleetSize returns the total number of customers across all shards.
func (t Topology) FleetSize() int { return len(t.loads) }

// Members returns shard i's customer names.
func (t Topology) Members(i int) []string {
	return append([]string(nil), t.shards[i]...)
}

// ConcentratorName returns the bus name of shard i's Concentrator Agent.
func (t Topology) ConcentratorName(i int) string {
	return fmt.Sprintf("cc-%03d", i)
}

// MemberLoads returns the Utility-Agent-style model of shard i's customers,
// which seeds the shard's concentrator.
func (t Topology) MemberLoads(i int) map[string]protocol.CustomerLoad {
	out := make(map[string]protocol.CustomerLoad, len(t.shards[i]))
	for _, n := range t.shards[i] {
		out[n] = t.loads[n]
	}
	return out
}

// AggregateLoads returns the root Utility Agent's model of the cluster: one
// CustomerLoad per concentrator, with predicted and allowed use summed over
// the shard. Predicted-use curves are additive across customers (Section 6's
// predicted_overuse is a sum), so the root's balance prediction over these
// aggregates equals the flat prediction over the fleet.
func (t Topology) AggregateLoads() map[string]protocol.CustomerLoad {
	out := make(map[string]protocol.CustomerLoad, len(t.shards))
	for i, shard := range t.shards {
		var pred, allowed units.Energy
		for _, n := range shard {
			pred = pred.Add(t.loads[n].Predicted)
			allowed = allowed.Add(t.loads[n].Allowed)
		}
		out[t.ConcentratorName(i)] = protocol.CustomerLoad{Predicted: pred, Allowed: allowed}
	}
	return out
}
