package health

import (
	"context"
	"fmt"
	"math"
	"net"
	"net/http"
	"time"
)

// The feedback responder speaks the minimal contract HAProxy agent checks
// and lbfeedback-style balancers consume: connect, read one short
// plain-text line — "NN%\n" — disconnect. The percentage is the live
// feedback score rounded to an integer, so a fronting balancer weights
// this node by its own reported health.

// feedbackLine renders the responder line for a score.
func feedbackLine(score float64) string {
	n := int(math.Round(score))
	if n < 0 {
		n = 0
	}
	if n > 100 {
		n = 100
	}
	return fmt.Sprintf("%d%%\n", n)
}

// Responder serves the feedback line over TCP, one line per connection.
type Responder struct {
	ln     net.Listener
	scorer *Scorer
}

// NewResponder listens on addr (e.g. ":3333") and answers every
// connection with the scorer's current value. Returns the responder with
// its bound address resolvable via Addr (addr may use port 0).
func NewResponder(addr string, scorer *Scorer) (*Responder, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("health: feedback responder: %w", err)
	}
	return &Responder{ln: ln, scorer: scorer}, nil
}

// Addr returns the bound listen address.
func (r *Responder) Addr() string { return r.ln.Addr().String() }

// Serve accepts connections until ctx is cancelled or the listener is
// closed. Each connection gets the feedback line and an immediate close;
// a slow or dead peer is abandoned after a short write deadline.
func (r *Responder) Serve(ctx context.Context) {
	go func() {
		<-ctx.Done()
		r.ln.Close()
	}()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return // listener closed
		}
		_ = conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
		_, _ = conn.Write([]byte(feedbackLine(r.scorer.Value())))
		_ = conn.Close()
	}
}

// Close shuts the listener down.
func (r *Responder) Close() error { return r.ln.Close() }

// FeedbackHandler serves the same plain-text line over HTTP (/feedback),
// for balancers that health-check via HTTP instead of a raw socket.
func FeedbackHandler(scorer *Scorer) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, feedbackLine(scorer.Value()))
	}
}
