package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"loadbalance/internal/health"
	"loadbalance/internal/obsplane"
	"loadbalance/internal/trace"
)

// startConsoleFixture boots a hub with one streaming process and serves its
// /fleet endpoints over HTTP, returning the host:port gridctl dials.
func startConsoleFixture(t *testing.T) string {
	t.Helper()
	logger, err := health.New(health.Config{Proc: "w1", MinLevel: health.Debug, RingSize: 256, StderrLevel: health.Off})
	if err != nil {
		t.Fatal(err)
	}
	hub, err := obsplane.StartHub(obsplane.HubConfig{Addr: "127.0.0.1:0", Logger: logger})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(hub.Close)

	tr := trace.NewTracer("w1", 256)
	root := tr.Root("session.run")
	root.SetSession("s1")
	child := tr.Child(root.Context(), "phase.negotiate")
	child.SetSession("s1")
	child.End()
	root.End()
	logger.Log(health.Warn, "overload", "shedding load", health.Str("shard", "2"))

	em := obsplane.StartEmitter(obsplane.EmitterConfig{
		Hub: hub.Addr(), Proc: "w1", Role: "worker",
		Interval: 10 * time.Millisecond,
		Logger:   logger,
		Tracer:   func() *trace.Tracer { return tr },
		MetricsFn: func(w io.Writer) {
			fmt.Fprint(w, "feedback_score 90\n")
		},
	})
	t.Cleanup(em.Close)

	mux := http.NewServeMux()
	hub.Mount(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	deadline := time.Now().Add(5 * time.Second)
	for {
		st := hub.Status()
		if len(st) == 1 && st[0].Spans >= 2 && st[0].Logs >= 1 && st[0].Score == 90 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fixture never merged: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return strings.TrimPrefix(srv.URL, "http://")
}

func TestConsoleTop(t *testing.T) {
	addr := startConsoleFixture(t)
	var out bytes.Buffer
	if err := run(&out, []string{"-addr", addr, "top"}); err != nil {
		t.Fatalf("top: %v", err)
	}
	got := out.String()
	for _, want := range []string{"fleet score 90.0", "PROC", "w1", "worker", "live"} {
		if !strings.Contains(got, want) {
			t.Fatalf("top output missing %q:\n%s", want, got)
		}
	}
}

func TestConsoleLogs(t *testing.T) {
	addr := startConsoleFixture(t)
	var out bytes.Buffer
	// -addr after the subcommand must work too.
	if err := run(&out, []string{"logs", "-addr", addr, "-level", "warn"}); err != nil {
		t.Fatalf("logs: %v", err)
	}
	got := out.String()
	for _, want := range []string{"WARN", "[w1]", "overload: shedding load", `"shard":"2"`} {
		if !strings.Contains(got, want) {
			t.Fatalf("logs output missing %q:\n%s", want, got)
		}
	}
}

func TestConsoleTrace(t *testing.T) {
	addr := startConsoleFixture(t)
	var out bytes.Buffer
	if err := run(&out, []string{"-addr", addr, "trace", "s1"}); err != nil {
		t.Fatalf("trace: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "session s1: 2 spans from 1 processes") {
		t.Fatalf("trace header wrong:\n%s", got)
	}
	// The root renders flush left, the child indented under it.
	if !strings.Contains(got, "\nsession.run") {
		t.Fatalf("trace tree missing root:\n%s", got)
	}
	if !strings.Contains(got, "\n  phase.negotiate") {
		t.Fatalf("trace tree child not indented:\n%s", got)
	}
}

func TestConsoleErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, nil); err == nil || !strings.Contains(err.Error(), "usage") {
		t.Fatalf("no-args error = %v", err)
	}
	if err := run(&out, []string{"-addr", "x", "frobnicate"}); err == nil || !strings.Contains(err.Error(), "unknown command") {
		t.Fatalf("unknown command error = %v", err)
	}
	t.Setenv("GRIDCTL_ADDR", "")
	if err := run(&out, []string{"top"}); err == nil || !strings.Contains(err.Error(), "no hub address") {
		t.Fatalf("missing addr error = %v", err)
	}
	if err := run(&out, []string{"-addr", "x", "trace"}); err == nil || !strings.Contains(err.Error(), "exactly one session") {
		t.Fatalf("trace arity error = %v", err)
	}
}
