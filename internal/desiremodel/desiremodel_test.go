package desiremodel

import (
	"testing"
	"time"

	"loadbalance/internal/desire"
	"loadbalance/internal/kb"
	"loadbalance/internal/units"
	"loadbalance/internal/utilityagent"
)

func TestDecideMethodMatchesFigure2Cases(t *testing.T) {
	tests := []struct {
		name           string
		give           UASituation
		wantMethod     string
		wantAcceptance string
	}{
		{
			name:           "imminent peak",
			give:           UASituation{LeadTimeMinutes: 5, OveruseRatio: 0.35, Customers: 100},
			wantMethod:     MethodOffer,
			wantAcceptance: AcceptCountYes,
		},
		{
			name:           "small peak",
			give:           UASituation{LeadTimeMinutes: 120, OveruseRatio: 0.08, Customers: 100},
			wantMethod:     MethodOffer,
			wantAcceptance: AcceptCountYes,
		},
		{
			name:           "long horizon small fleet",
			give:           UASituation{LeadTimeMinutes: 720, OveruseRatio: 0.35, Customers: 20},
			wantMethod:     MethodRFB,
			wantAcceptance: AcceptMonotonicYMin,
		},
		{
			name:           "default reward tables",
			give:           UASituation{LeadTimeMinutes: 120, OveruseRatio: 0.35, Customers: 1000},
			wantMethod:     MethodRewardTable,
			wantAcceptance: AcceptMonotonicBids,
		},
		{
			name:           "long horizon large fleet",
			give:           UASituation{LeadTimeMinutes: 720, OveruseRatio: 0.35, Customers: 1000},
			wantMethod:     MethodRewardTable,
			wantAcceptance: AcceptMonotonicBids,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			method, acceptance, err := DecideMethod(tt.give)
			if err != nil {
				t.Fatal(err)
			}
			if method != tt.wantMethod {
				t.Fatalf("method = %q, want %q", method, tt.wantMethod)
			}
			if acceptance != tt.wantAcceptance {
				t.Fatalf("acceptance = %q, want %q", acceptance, tt.wantAcceptance)
			}
		})
	}
}

// TestSpecificationMatchesImplementation is the consistency check between
// the declarative Figure 2 model and the operational ChooseMethod, sampled
// away from threshold boundaries.
func TestSpecificationMatchesImplementation(t *testing.T) {
	cases := []UASituation{
		{LeadTimeMinutes: 5, OveruseRatio: 0.4, Customers: 10},
		{LeadTimeMinutes: 30, OveruseRatio: 0.05, Customers: 400},
		{LeadTimeMinutes: 120, OveruseRatio: 0.35, Customers: 1000},
		{LeadTimeMinutes: 720, OveruseRatio: 0.35, Customers: 20},
		{LeadTimeMinutes: 720, OveruseRatio: 0.35, Customers: 900},
	}
	implName := map[utilityagent.Method]string{
		utilityagent.MethodOffer:          MethodOffer,
		utilityagent.MethodRequestForBids: MethodRFB,
		utilityagent.MethodRewardTable:    MethodRewardTable,
	}
	for _, s := range cases {
		spec, _, err := DecideMethod(s)
		if err != nil {
			t.Fatal(err)
		}
		impl := utilityagent.ChooseMethod(utilityagent.Situation{
			LeadTime:     time.Duration(s.LeadTimeMinutes) * time.Minute,
			OveruseRatio: s.OveruseRatio,
			Customers:    int(s.Customers),
			ResponseRate: 0.7,
		})
		if implName[impl] != spec {
			t.Fatalf("situation %+v: spec %q vs implementation %q", s, spec, implName[impl])
		}
	}
}

func TestEvaluateNegotiationProcess(t *testing.T) {
	verdictFor := func(converged float64) string {
		t.Helper()
		opc, err := NewUAOwnProcessControl()
		if err != nil {
			t.Fatal(err)
		}
		facts := []kb.Fact{
			{Atom: kb.A("lead_time_minutes", kb.N(120)), Truth: kb.True},
			{Atom: kb.A("overuse_ratio", kb.N(0.35)), Truth: kb.True},
			{Atom: kb.A("customer_count", kb.N(100)), Truth: kb.True},
			{Atom: kb.A("outcome_converged", kb.N(converged)), Truth: kb.True},
			{Atom: kb.A("rounds_used", kb.N(3)), Truth: kb.True},
		}
		out, err := desire.Run(opc, facts)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range out {
			if f.Atom.Pred == "process_verdict" && f.Truth == kb.True {
				return f.Atom.Args[0].Name
			}
		}
		return ""
	}
	if got := verdictFor(1); got != "successful" {
		t.Fatalf("verdict = %q, want successful", got)
	}
	if got := verdictFor(0); got != "needs_review" {
		t.Fatalf("verdict = %q, want needs_review", got)
	}
}

// TestDecideBidReproducesPaperCustomer runs the Figure 5 composition on the
// Figures 8-9 situation.
func TestDecideBidReproducesPaperCustomer(t *testing.T) {
	announcedRound1 := map[float64]float64{0.1: 4.25, 0.2: 8.5, 0.3: 12.75, 0.4: 17}
	required := map[float64]float64{0.1: 4, 0.2: 8, 0.3: 13, 0.4: 21}
	savables := map[string][2]float64{
		"water_heater":  {3.0, 0.6},
		"space_heating": {2.5, 1.2},
		"white_goods":   {1.0, 0.4},
	}
	bid, err := DecideBid(announcedRound1, required, 13.5, savables)
	if err != nil {
		t.Fatal(err)
	}
	if !units.NearlyEqual(bid.CutDown, 0.2, 1e-12) {
		t.Fatalf("round-1 bid = %v, want 0.2", bid.CutDown)
	}
	// Implementation instructions: shed 0.2×13.5 = 2.7 kWh cheapest-first:
	// white_goods 1.0 then water_heater 1.7.
	if !units.NearlyEqual(bid.Instructions["white_goods"], 1.0, 1e-9) {
		t.Fatalf("white_goods instruction = %v, want 1.0", bid.Instructions["white_goods"])
	}
	if !units.NearlyEqual(bid.Instructions["water_heater"], 1.7, 1e-9) {
		t.Fatalf("water_heater instruction = %v, want 1.7", bid.Instructions["water_heater"])
	}
	if v, ok := bid.Instructions["space_heating"]; ok && v > 0 {
		t.Fatalf("space_heating should not shed at 0.2, got %v", v)
	}

	// Round 3 announcement: 0.4 now pays 24.8 ≥ 21.
	announcedRound3 := map[float64]float64{0.1: 6.2, 0.2: 12.4, 0.3: 18.6, 0.4: 24.8}
	bid, err = DecideBid(announcedRound3, required, 13.5, savables)
	if err != nil {
		t.Fatal(err)
	}
	if !units.NearlyEqual(bid.CutDown, 0.4, 1e-12) {
		t.Fatalf("round-3 bid = %v, want 0.4", bid.CutDown)
	}
	// 0.4×13.5 = 5.4 kWh: white_goods 1.0 + water_heater 3.0 + heating 1.4.
	if !units.NearlyEqual(bid.Instructions["space_heating"], 1.4, 1e-9) {
		t.Fatalf("space_heating instruction = %v, want 1.4", bid.Instructions["space_heating"])
	}
}

func TestDecideBidNothingAcceptable(t *testing.T) {
	announced := map[float64]float64{0.1: 1, 0.2: 2}
	required := map[float64]float64{0.1: 10, 0.2: 20}
	bid, err := DecideBid(announced, required, 13.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bid.CutDown != 0 {
		t.Fatalf("bid = %v, want 0", bid.CutDown)
	}
	if len(bid.Instructions) != 0 {
		t.Fatalf("instructions = %v, want none", bid.Instructions)
	}
}
