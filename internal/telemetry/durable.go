package telemetry

// Durability for the live engine: every decision point appends a journal
// record (initial session outcome, per-tick meter-batch checkpoint,
// deviation-triggered re-negotiation), periodic snapshots capture the full
// engine + collector state, and recovery = snapshot + tail-replay. Because
// negotiation is byte-deterministic and the meters' jitter streams are
// seeded, a recovered engine continues the exact run the crashed process was
// executing: replay rebuilds the standing awards, ring series, detector
// hysteresis and demand factors, then fast-forwards the meter RNGs past the
// ticks already consumed.

import (
	"encoding/json"
	"fmt"
	"time"

	"loadbalance/internal/cluster"
	"loadbalance/internal/health"
	"loadbalance/internal/store"
)

// DurableConfig parameterises the live engine's data directory.
type DurableConfig struct {
	// Dir is the data directory holding the journal and snapshots.
	Dir string
	// SnapshotEvery writes a snapshot every this many ticks (default 32).
	SnapshotEvery int
	// Store tunes the underlying journal (segment size, fsync cadence).
	Store store.Options
}

// RecoveryInfo reports what OpenDurable found and restored.
type RecoveryInfo struct {
	// Recovered is true when the data directory held prior state.
	Recovered bool
	// CleanStart is true when that state ended with a seal record (the
	// previous process shut down gracefully).
	CleanStart bool
	// SnapshotSeq is the journal position of the snapshot recovery started
	// from (0 = full tail replay).
	SnapshotSeq uint64
	// Replayed counts the journal records applied on top of the snapshot.
	Replayed int
	// ResumeTick is the tick the engine continues from.
	ResumeTick int
	// Elapsed is the wall time of open + replay — the recovery latency.
	Elapsed time.Duration
}

// liveState is the snapshot blob: the engine's and collector's full mutable
// state at the end of a tick, plus the scenario fingerprint so a snapshot
// can never be applied to a differently-parameterised grid.
type liveState struct {
	Scenario    store.ScenarioInfo `json:"scenario"`
	Topology    store.TopologyInfo `json:"topology"`
	Tick        int                `json:"tick"`
	Negotiated  bool               `json:"negotiated"`
	SessionSeq  int                `json:"sessionSeq"`
	Renegs      int                `json:"renegs"`
	ShardRenegs []int              `json:"shardRenegs"`
	Bids        map[string]float64 `json:"bids"`
	Awards      map[string]Award   `json:"awards"`
	ShardFactor []float64          `json:"shardFactor"`
	Events      []RenegotiateEvent `json:"events"`
	Detector    DetectorState      `json:"detector"`
	Rings       [][]float64        `json:"rings"`
	Collector   CollectorStats     `json:"collector"`
}

// OpenDurable builds a live engine backed by a data directory: a fresh
// directory registers the scenario and negotiates from scratch; one holding
// a journal recovers the crashed (or sealed) run mid-flight and resumes at
// the next tick. The same configuration must be presented on every open —
// recovery validates it against the journal's scenario registration.
func OpenDurable(cfg LiveConfig, dcfg DurableConfig) (*LiveEngine, *RecoveryInfo, error) {
	start := time.Now() //gridlint:allow walltime(recovery latency measurement for RecoveryInfo.Elapsed; replayed state comes from the journal)
	if dcfg.SnapshotEvery == 0 {
		dcfg.SnapshotEvery = 32
	}
	if dcfg.SnapshotEvery < 0 {
		return nil, nil, fmt.Errorf("%w: snapshot every %d ticks", ErrBadConfig, dcfg.SnapshotEvery)
	}
	st, rec, err := store.Open(dcfg.Dir, dcfg.Store)
	if err != nil {
		return nil, nil, err
	}
	e, err := NewLiveEngine(cfg)
	if err != nil {
		st.Close()
		return nil, nil, err
	}
	e.st = st
	e.snapshotEvery = dcfg.SnapshotEvery

	info := &RecoveryInfo{
		Recovered:   !rec.Empty(),
		CleanStart:  rec.Sealed,
		SnapshotSeq: rec.SnapshotSeq,
		Replayed:    len(rec.Records),
	}
	negotiated := false
	if info.Recovered {
		negotiated, err = e.restore(rec)
		if err != nil {
			st.Close()
			return nil, nil, err
		}
	}
	if !negotiated {
		// Fresh directory (or a crash before the initial outcome was
		// durable — negotiation is deterministic, so re-running it lands on
		// the same awards): register the run, then negotiate.
		if err := e.journalRegistration(); err != nil {
			st.Close()
			return nil, nil, err
		}
		if err := e.Start(); err != nil {
			st.Close()
			return nil, nil, err
		}
	} else if err := e.openTelemetry(); err != nil {
		st.Close()
		return nil, nil, err
	}
	info.ResumeTick = e.tick
	info.Elapsed = time.Since(start) //gridlint:allow walltime(recovery latency measurement for RecoveryInfo.Elapsed; replayed state comes from the journal)
	if info.Recovered {
		health.Log(health.Info, "telemetry", "recovered journaled run",
			health.Str("session", cfg.Scenario.SessionID),
			health.Int("resumeTick", int64(info.ResumeTick)),
			health.Int("replayed", int64(info.Replayed)),
			health.Int("snapshotSeq", int64(info.SnapshotSeq)))
	}
	return e, info, nil
}

// Store exposes the engine's backing store (nil on a volatile engine) for
// metrics endpoints.
func (e *LiveEngine) Store() *store.Store { return e.st }

// fingerprint derives the scenario registration from the effective config.
func (e *LiveEngine) fingerprint() store.ScenarioInfo {
	return store.ScenarioInfo{
		SessionID:      e.cfg.Scenario.SessionID,
		Customers:      len(e.cfg.Scenario.Customers),
		Shards:         e.cfg.Shards,
		TicksPerWindow: e.cfg.TicksPerWindow,
		Seed:           e.cfg.Seed,
		Jitter:         e.cfg.Jitter,
	}
}

// topologyInfo derives the membership record from the shard partition.
func (e *LiveEngine) topologyInfo() store.TopologyInfo {
	info := store.TopologyInfo{
		Shards:     e.topo.Shards(),
		Fleet:      e.topo.FleetSize(),
		ShardSizes: make([]int, e.topo.Shards()),
	}
	for i := range info.ShardSizes {
		info.ShardSizes[i] = len(e.topo.Members(i))
	}
	return info
}

// journalRegistration appends the scenario + topology records opening a
// fresh journal.
func (e *LiveEngine) journalRegistration() error {
	scen, err := store.NewScenarioRecord(e.fingerprint())
	if err != nil {
		return err
	}
	topo, err := store.NewTopologyRecord(e.topologyInfo())
	if err != nil {
		return err
	}
	if err := e.st.AppendBatch(scen, topo); err != nil {
		return err
	}
	return e.st.Sync()
}

// journalSession records the initial fleet-wide negotiation outcome.
func (e *LiveEngine) journalSession(res *cluster.Result) error {
	out := store.SessionOutcome{
		SessionID: e.cfg.Scenario.SessionID,
		Outcome:   res.Outcome,
		Rounds:    res.Rounds,
		Bids:      make(map[string]float64, len(e.bids)),
		Awards:    make(map[string]store.AwardEntry, len(e.awards)),
	}
	for n, b := range e.bids {
		out.Bids[n] = b
	}
	for n, a := range e.awards {
		out.Awards[n] = store.AwardEntry{CutDown: a.CutDown, Reward: a.Reward}
	}
	rec, err := store.NewSessionRecord(out)
	if err != nil {
		return err
	}
	if err := e.st.Append(rec); err != nil {
		return err
	}
	return e.st.Sync()
}

// journalTick commits one live tick: a checkpoint record, or — when the tick
// re-negotiated — a single reneg record carrying both the checkpoint and the
// decision, so a torn write can never persist one without the other. The
// snapshot cadence rides on the same commit point.
func (e *LiveEngine) journalTick(tick int, measured []float64, readings int64, ev *RenegotiateEvent) error {
	cp := store.TickCheckpoint{Tick: tick, Shard: measured, Readings: readings, Batches: e.batchesPerTick}
	if ev == nil {
		if err := e.st.AppendTick(cp); err != nil {
			return err
		}
		return e.commitTick(tick)
	}
	out := store.RenegOutcome{
		Checkpoint: cp,
		SessionSeq: e.sessionSeq,
		SessionID:  ev.SessionID,
		Shards:     ev.Shards,
		Members:    ev.Members,
		Outcome:    ev.Outcome,
		Factors:    ev.Factors,
		Bids:       make(map[string]float64, ev.Members),
		Awards:     make(map[string]store.AwardEntry, ev.Members),
	}
	for _, i := range ev.Shards {
		for _, n := range e.topo.Members(i) {
			out.Bids[n] = e.bids[n]
			a := e.awards[n]
			out.Awards[n] = store.AwardEntry{CutDown: a.CutDown, Reward: a.Reward}
		}
	}
	rec, err := store.NewRenegRecord(out)
	if err != nil {
		return err
	}
	if err := e.st.Append(rec); err != nil {
		return err
	}
	return e.commitTick(tick)
}

// commitTick flushes the tick's records and rides the snapshot cadence on
// the same commit point.
func (e *LiveEngine) commitTick(tick int) error {
	if err := e.st.Commit(); err != nil {
		return err
	}
	if e.snapshotEvery > 0 && (tick+1)%e.snapshotEvery == 0 {
		return e.st.Snapshot(e.snapshotBlob())
	}
	return nil
}

// snapshotBlob captures the full engine + collector state.
func (e *LiveEngine) snapshotBlob() []byte {
	ls := liveState{
		Scenario:    e.fingerprint(),
		Topology:    e.topologyInfo(),
		Tick:        e.tick,
		Negotiated:  len(e.bids) > 0,
		SessionSeq:  e.sessionSeq,
		Renegs:      e.renegs,
		ShardRenegs: append([]int(nil), e.shardRenegs...),
		Bids:        e.bids,
		Awards:      e.awards,
		ShardFactor: append([]float64(nil), e.shardFactor...),
		Events:      e.events,
		Detector:    e.det.State(),
		Rings:       make([][]float64, e.topo.Shards()),
		Collector:   e.collector.Stats(),
	}
	for i := range ls.Rings {
		ls.Rings[i] = e.collector.ShardSeries(i)
	}
	blob, err := json.Marshal(ls)
	if err != nil {
		// Every field is a plain value; a marshal failure is a programming
		// error surfaced by tests, not an operational condition.
		panic(fmt.Sprintf("telemetry: snapshot state: %v", err))
	}
	return blob
}

// restore applies recovered state: the snapshot first, then the journal
// tail, record by record, exactly as the live loop produced it. It returns
// whether an initial negotiation outcome is part of the restored state.
func (e *LiveEngine) restore(rec *store.Recovered) (negotiated bool, err error) {
	if len(rec.Snapshot) > 0 {
		negotiated, err = e.applySnapshotState(rec.Snapshot)
		if err != nil {
			return false, err
		}
	}
	for _, r := range rec.Records {
		n, err := e.applyJournalRecord(r)
		if err != nil {
			return false, err
		}
		negotiated = negotiated || n
	}
	e.finishReplay()
	return negotiated, nil
}

// applySnapshotState restores the full engine + collector state from a
// snapshot blob, validating it against this engine's configuration. It
// returns whether the snapshot holds a negotiated outcome.
func (e *LiveEngine) applySnapshotState(blob []byte) (negotiated bool, err error) {
	want := e.fingerprint()
	var ls liveState
	if err := json.Unmarshal(blob, &ls); err != nil {
		return false, fmt.Errorf("telemetry: snapshot state: %w", err)
	}
	if ls.Scenario != want {
		return false, fmt.Errorf("%w: journal at %s was written by scenario %+v, not %+v",
			ErrBadConfig, e.st.Dir(), ls.Scenario, want)
	}
	if len(ls.ShardFactor) != e.topo.Shards() || len(ls.ShardRenegs) != e.topo.Shards() {
		return false, fmt.Errorf("%w: snapshot shard vectors do not match the topology", ErrBadConfig)
	}
	e.tick = ls.Tick
	e.sessionSeq = ls.SessionSeq
	e.renegs = ls.Renegs
	copy(e.shardRenegs, ls.ShardRenegs)
	copy(e.shardFactor, ls.ShardFactor)
	e.events = ls.Events
	for n, b := range ls.Bids {
		e.bids[n] = b
	}
	for n, a := range ls.Awards {
		e.awards[n] = a
	}
	if err := e.det.Restore(ls.Detector); err != nil {
		return false, err
	}
	if err := e.collector.RestoreState(ls.Rings, ls.Collector); err != nil {
		return false, err
	}
	return ls.Negotiated, nil
}

// applyJournalRecord replays one journal record into the engine — the unit
// shared by crash recovery (a whole tail at once) and a hot standby (records
// applied as the stream ships them). It reports whether the record commits a
// negotiated outcome.
func (e *LiveEngine) applyJournalRecord(r store.Record) (negotiated bool, err error) {
	want := e.fingerprint()
	switch r.Kind {
	case store.KindScenario:
		got, err := store.DecodeScenario(r)
		if err != nil {
			return false, err
		}
		if got != want {
			return false, fmt.Errorf("%w: journal at %s was written by scenario %+v, not %+v",
				ErrBadConfig, e.st.Dir(), got, want)
		}
	case store.KindTopology:
		got, err := store.DecodeTopology(r)
		if err != nil {
			return false, err
		}
		if got.Shards != e.topo.Shards() || got.Fleet != e.topo.FleetSize() {
			return false, fmt.Errorf("%w: journal topology %d shards over %d customers, engine has %d over %d",
				ErrBadConfig, got.Shards, got.Fleet, e.topo.Shards(), e.topo.FleetSize())
		}
	case store.KindSession:
		out, err := store.DecodeSession(r)
		if err != nil {
			return false, err
		}
		e.applyStored(out.Bids, out.Awards)
		return true, nil
	case store.KindTick:
		cp, err := store.DecodeTick(r)
		if err != nil {
			return false, err
		}
		if err := e.replayCheckpoint(cp); err != nil {
			return false, err
		}
	case store.KindReneg:
		out, err := store.DecodeReneg(r)
		if err != nil {
			return false, err
		}
		if err := e.replayCheckpoint(out.Checkpoint); err != nil {
			return false, err
		}
		e.applyStored(out.Bids, out.Awards)
		ev := RenegotiateEvent{
			Tick:      out.Checkpoint.Tick,
			Shards:    out.Shards,
			SessionID: out.SessionID,
			Members:   out.Members,
			Outcome:   out.Outcome,
			Factors:   out.Factors,
		}
		for i, f := range out.Factors {
			if i < 0 || i >= e.topo.Shards() {
				return false, fmt.Errorf("%w: re-negotiation record names shard %d of %d", ErrBadConfig, i, e.topo.Shards())
			}
			e.shardFactor[i] = f
			e.det.Reset(i)
			e.shardRenegs[i]++
		}
		e.sessionSeq = out.SessionSeq
		e.renegs++
		e.events = append(e.events, ev)
		return true, nil
	case store.KindAborted, store.KindSeal, store.KindPromote:
		// Informational: an aborted session committed nothing, the seal only
		// marks the clean shutdown, and a promote record marks where a
		// standby's replicated prefix ended.
	}
	return false, nil
}

// finishReplay completes a replay: the meters already produced e.tick samples
// in the journal's life, so their jitter streams are fast-forwarded to make
// the next sample continue the exact sequence an uninterrupted run would have
// produced, and the standing bids are actuated into them.
func (e *LiveEngine) finishReplay() {
	e.fleet.SkipTicks(e.tick)
	e.fleet.Actuate(e.bids)
}

// applyStored merges a journaled outcome into the standing bids and awards.
func (e *LiveEngine) applyStored(bids map[string]float64, awards map[string]store.AwardEntry) {
	for n, b := range bids {
		e.bids[n] = b
	}
	for n, a := range awards {
		e.awards[n] = Award{CutDown: a.CutDown, Reward: a.Reward}
	}
}

// replayCheckpoint re-applies one closed tick: ring series, detector
// hysteresis (against the expectation the engine held at that tick — the
// standing bids and factors restored so far) and the tick counter.
func (e *LiveEngine) replayCheckpoint(cp store.TickCheckpoint) error {
	if cp.Tick != e.tick {
		return fmt.Errorf("%w: journal checkpoint for tick %d cannot follow tick %d", store.ErrCorrupt, cp.Tick, e.tick)
	}
	if err := e.collector.RestoreTick(cp.Shard, cp.Readings, cp.Batches); err != nil {
		return err
	}
	for i, v := range cp.Shard {
		e.det.Observe(i, v, e.expectedTick(i))
	}
	e.tick = cp.Tick + 1
	return nil
}

// GridProfile is the engine's canonical observable outcome: the standing
// awards plus the per-shard demand state. Its JSON marshalling is
// deterministic (sorted map keys, shortest round-trip floats), which is what
// the byte-identical recovery guarantee is stated over.
type GridProfile struct {
	Tick           int              `json:"tick"`
	Renegotiations int              `json:"renegotiations"`
	Awards         map[string]Award `json:"awards"`
	ShardFactors   []float64        `json:"shardFactors"`
	ShardSeries    [][]float64      `json:"shardSeries"`
}

// Profile captures the canonical outcome. Call it from the tick loop's
// goroutine (it reads engine state).
func (e *LiveEngine) Profile() GridProfile {
	p := GridProfile{
		Tick:           e.tick,
		Renegotiations: e.renegs,
		Awards:         make(map[string]Award, len(e.awards)),
		ShardFactors:   append([]float64(nil), e.shardFactor...),
		ShardSeries:    make([][]float64, e.topo.Shards()),
	}
	for n, a := range e.awards {
		p.Awards[n] = a
	}
	for i := range p.ShardSeries {
		p.ShardSeries[i] = e.collector.ShardSeries(i)
	}
	return p
}
