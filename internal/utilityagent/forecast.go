package utilityagent

import (
	"errors"
	"fmt"
	"sort"

	"loadbalance/internal/prediction"
	"loadbalance/internal/protocol"
	"loadbalance/internal/units"
)

// This file implements the UA's agent-specific task "determine predicted
// balance consumption/production" (Section 5.1.2): "available information is
// analysed and predictions are calculated on the basis of statistical
// models". The Forecaster turns per-customer consumption history (what the
// meter recorded in the same window on previous days) into the CustomerLoad
// models a negotiation starts from, selecting the best statistical model per
// customer by backtest.

// ErrNoHistory is returned when a customer has too little history.
var ErrNoHistory = errors.New("utilityagent: insufficient consumption history")

// Forecaster selects among candidate predictors per customer.
type Forecaster struct {
	// Candidates are the statistical models considered; nil means the
	// default set (moving averages, exponential smoothing, naive).
	Candidates []prediction.Predictor
	// Warmup is the number of observations reserved before backtesting
	// (default 3).
	Warmup int
}

// DefaultCandidates returns the standard model set for daily window series.
func DefaultCandidates() []prediction.Predictor {
	return []prediction.Predictor{
		prediction.MovingAverage{Window: 3},
		prediction.MovingAverage{Window: 7},
		prediction.ExpSmoothing{Alpha: 0.3},
		prediction.ExpSmoothing{Alpha: 0.6},
		prediction.SeasonalNaive{Period: 1}, // yesterday's value
	}
}

// Forecast predicts the next value of one customer's series and reports the
// chosen model's name.
func (f Forecaster) Forecast(series []float64) (float64, string, error) {
	candidates := f.Candidates
	if candidates == nil {
		candidates = DefaultCandidates()
	}
	warmup := f.Warmup
	if warmup <= 0 {
		warmup = 3
	}
	if len(series) <= warmup {
		return 0, "", fmt.Errorf("%w: %d observations, need > %d", ErrNoHistory, len(series), warmup)
	}
	best, _, err := prediction.Best(candidates, series, warmup)
	if err != nil {
		return 0, "", err
	}
	v, err := best.Predict(series)
	if err != nil {
		return 0, "", err
	}
	if v < 0 {
		v = 0
	}
	return v, best.Name(), nil
}

// ForecastReport describes the fleet forecast.
type ForecastReport struct {
	// ModelByCustomer names the model chosen per customer.
	ModelByCustomer map[string]string
	// TotalPredicted is the fleet prediction for the window.
	TotalPredicted units.Energy
}

// LoadsFromHistory builds the negotiation's customer models from metered
// history: histories maps each customer to its per-day energy use in the
// target window (oldest first). The allowance is set to the prediction, as
// in the prototype (allowed_use = typical use).
func (f Forecaster) LoadsFromHistory(histories map[string][]float64) (map[string]protocol.CustomerLoad, ForecastReport, error) {
	if len(histories) == 0 {
		return nil, ForecastReport{}, fmt.Errorf("%w: no customers", ErrNoHistory)
	}
	loads := make(map[string]protocol.CustomerLoad, len(histories))
	rep := ForecastReport{ModelByCustomer: make(map[string]string, len(histories))}

	// Deterministic iteration keeps reports reproducible.
	names := make([]string, 0, len(histories))
	for n := range histories {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		v, model, err := f.Forecast(histories[name])
		if err != nil {
			return nil, ForecastReport{}, fmt.Errorf("customer %q: %w", name, err)
		}
		e := units.Energy(v)
		loads[name] = protocol.CustomerLoad{Predicted: e, Allowed: e}
		rep.ModelByCustomer[name] = model
		rep.TotalPredicted = rep.TotalPredicted.Add(e)
	}
	return loads, rep, nil
}

// ForecastError quantifies fleet-level forecast quality against the actual
// outcomes: mean absolute percentage error across customers. Customers are
// visited in sorted order so the float accumulation is reproducible.
func ForecastError(loads map[string]protocol.CustomerLoad, actual map[string]units.Energy) (float64, error) {
	names := make([]string, 0, len(loads))
	for name := range loads {
		names = append(names, name)
	}
	sort.Strings(names)
	var forecasts, actuals []float64
	for _, name := range names {
		a, ok := actual[name]
		if !ok {
			continue
		}
		forecasts = append(forecasts, loads[name].Predicted.KWhs())
		actuals = append(actuals, a.KWhs())
	}
	return prediction.MAPE(forecasts, actuals)
}
