package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// mustOpen opens a store or fails the test.
func mustOpen(t *testing.T, dir string, opts Options) (*Store, *Recovered) {
	t.Helper()
	st, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return st, rec
}

// sampleTick builds a deterministic checkpoint.
func sampleTick(tick, shards int) TickCheckpoint {
	cp := TickCheckpoint{Tick: tick, Readings: int64(8 * shards), Batches: 2, Shard: make([]float64, shards)}
	for i := range cp.Shard {
		cp.Shard[i] = 1.5*float64(i) + 0.125*float64(tick)
	}
	return cp
}

func TestFrameRoundTrip(t *testing.T) {
	recs := []Record{
		{Kind: KindScenario, Body: []byte(`{"sessionId":"s"}`)},
		NewTickRecord(sampleTick(7, 4)),
		{Kind: KindSeal},
	}
	var buf []byte
	for _, r := range recs {
		buf = appendFrame(buf, r)
	}
	for _, want := range recs {
		got, n, err := decodeFrame(buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Kind != want.Kind || !bytes.Equal(got.Body, want.Body) {
			t.Fatalf("frame round trip: got %v %q, want %v %q", got.Kind, got.Body, want.Kind, want.Body)
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes", len(buf))
	}
}

func TestTickBodyRoundTrip(t *testing.T) {
	want := sampleTick(123456, 16)
	got, err := DecodeTick(NewTickRecord(want))
	if err != nil {
		t.Fatal(err)
	}
	if got.Tick != want.Tick || got.Readings != want.Readings || got.Batches != want.Batches {
		t.Fatalf("header round trip: got %+v", got)
	}
	for i := range want.Shard {
		if got.Shard[i] != want.Shard[i] {
			t.Fatalf("shard %d: %v != %v (must be bit-exact)", i, got.Shard[i], want.Shard[i])
		}
	}
}

func TestJSONRecordRoundTrips(t *testing.T) {
	sess := SessionOutcome{
		SessionID: "live-1", Outcome: "converged", Rounds: 3,
		Bids:   map[string]float64{"c1": 0.2, "c2": 0.4},
		Awards: map[string]AwardEntry{"c1": {CutDown: 0.2, Reward: 8.5}},
	}
	r, err := NewSessionRecord(sess)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSession(r)
	if err != nil {
		t.Fatal(err)
	}
	if got.SessionID != sess.SessionID || got.Bids["c2"] != 0.4 || got.Awards["c1"].Reward != 8.5 {
		t.Fatalf("session round trip: %+v", got)
	}
	reneg := RenegOutcome{
		Checkpoint: sampleTick(9, 2), SessionSeq: 2, SessionID: "live-1-renego-2",
		Shards: []int{0, 3}, Members: 16, Outcome: "converged",
		Factors: map[int]float64{0: 2.5, 3: 2.4},
		Bids:    map[string]float64{"c1": 0.5},
		Awards:  map[string]AwardEntry{"c1": {CutDown: 0.5, Reward: 21}},
	}
	rr, err := NewRenegRecord(reneg)
	if err != nil {
		t.Fatal(err)
	}
	gotR, err := DecodeReneg(rr)
	if err != nil {
		t.Fatal(err)
	}
	if gotR.Factors[3] != 2.4 || gotR.Checkpoint.Tick != 9 || gotR.Shards[1] != 3 {
		t.Fatalf("reneg round trip: %+v", gotR)
	}
	if _, err := DecodeSession(rr); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("cross-kind decode error = %v, want ErrCorrupt", err)
	}
}

func TestOpenAppendRecover(t *testing.T) {
	dir := t.TempDir()
	st, rec := mustOpen(t, dir, Options{})
	if !rec.Empty() {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	scen, err := NewScenarioRecord(ScenarioInfo{SessionID: "s", Customers: 8, Shards: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendBatch(scen, NewTickRecord(sampleTick(0, 2)), NewTickRecord(sampleTick(1, 2))); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rec2 := mustOpen(t, dir, Options{})
	defer st2.Close()
	if len(rec2.Records) != 3 || rec2.LastSeq != 3 {
		t.Fatalf("recovered %d records, last seq %d", len(rec2.Records), rec2.LastSeq)
	}
	if rec2.Sealed {
		t.Fatal("unsealed journal reported sealed")
	}
	if got, err := DecodeScenario(rec2.Records[0]); err != nil || got.Customers != 8 {
		t.Fatalf("scenario record: %+v, %v", got, err)
	}
	if cp, err := DecodeTick(rec2.Records[2]); err != nil || cp.Tick != 1 {
		t.Fatalf("tick record: %+v, %v", cp, err)
	}
	// Appends after recovery continue the sequence in a fresh segment.
	if err := st2.Append(NewTickRecord(sampleTick(2, 2))); err != nil {
		t.Fatal(err)
	}
	if st2.Stats().LastSeq != 4 {
		t.Fatalf("last seq = %d, want 4", st2.Stats().LastSeq)
	}
}

func TestSealMarksCleanShutdown(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{})
	if err := st.Append(NewTickRecord(sampleTick(0, 1))); err != nil {
		t.Fatal(err)
	}
	if err := st.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(NewTickRecord(sampleTick(1, 1))); !errors.Is(err, ErrSealed) {
		t.Fatalf("append after seal = %v, want ErrSealed", err)
	}
	st.Close()

	_, rec := mustOpenClose(t, dir)
	if !rec.Sealed {
		t.Fatal("sealed journal not reported sealed")
	}
}

// mustOpenClose opens and immediately closes, returning the recovery.
func mustOpenClose(t *testing.T, dir string) (*Store, *Recovered) {
	t.Helper()
	st, rec := mustOpen(t, dir, Options{})
	st.Close()
	return st, rec
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{SegmentBytes: 1024})
	const n = 200
	for i := 0; i < n; i++ {
		if err := st.Append(NewTickRecord(sampleTick(i, 4))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if rot := st.Stats().Rotations; rot < 2 {
		t.Fatalf("rotations = %d, want several at a 1 KiB threshold", rot)
	}
	if segs := segmentGlob(dir); len(segs) < 3 {
		t.Fatalf("segments on disk = %d, want several", len(segs))
	}
	_, rec := mustOpenClose(t, dir)
	if len(rec.Records) != n {
		t.Fatalf("recovered %d records across segments, want %d", len(rec.Records), n)
	}
	for i, r := range rec.Records {
		cp, err := DecodeTick(r)
		if err != nil || cp.Tick != i {
			t.Fatalf("record %d: tick %d, err %v", i, cp.Tick, err)
		}
	}
}

func TestSnapshotAndTailReplay(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{})
	for i := 0; i < 10; i++ {
		if err := st.Append(NewTickRecord(sampleTick(i, 2))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Snapshot([]byte(`{"tick":10}`)); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 14; i++ {
		if err := st.Append(NewTickRecord(sampleTick(i, 2))); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	_, rec := mustOpenClose(t, dir)
	if string(rec.Snapshot) != `{"tick":10}` {
		t.Fatalf("snapshot blob = %q", rec.Snapshot)
	}
	if rec.SnapshotSeq != 10 {
		t.Fatalf("snapshot seq = %d, want 10", rec.SnapshotSeq)
	}
	if len(rec.Records) != 4 {
		t.Fatalf("tail records = %d, want only the 4 after the snapshot", len(rec.Records))
	}
	if cp, _ := DecodeTick(rec.Records[0]); cp.Tick != 10 {
		t.Fatalf("tail starts at tick %d, want 10", cp.Tick)
	}
}

func TestSnapshotPruning(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{SegmentBytes: 1024, KeepSnapshots: 2})
	for round := 0; round < 5; round++ {
		for i := 0; i < 40; i++ {
			if err := st.Append(NewTickRecord(sampleTick(round*40+i, 4))); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Snapshot([]byte{byte(round)}); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	if snaps := snapshotPaths(dir); len(snaps) != 2 {
		t.Fatalf("snapshots kept = %d, want 2", len(snaps))
	}
	segs := segmentGlob(dir)
	// Everything strictly below the older kept snapshot must be gone.
	oldest := pruneSnapshots(dir, 2)
	for i := 0; i+1 < len(segs); i++ {
		next, _ := segmentFirstSeq(segs[i+1])
		if next-1 <= oldest {
			t.Fatalf("segment %s is fully covered by snapshot %d but survived pruning", segs[i], oldest)
		}
	}
	// Recovery still replays everything after the newest snapshot.
	_, rec := mustOpenClose(t, dir)
	if rec.SnapshotSeq != 200 || len(rec.Records) != 0 {
		t.Fatalf("recovered snapshot %d + %d tail records, want 200 + 0", rec.SnapshotSeq, len(rec.Records))
	}
	if len(rec.Snapshot) != 1 || rec.Snapshot[0] != 4 {
		t.Fatalf("snapshot blob = %v, want the newest", rec.Snapshot)
	}
}

func TestDamagedSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{})
	if err := st.Append(NewTickRecord(sampleTick(0, 1))); err != nil {
		t.Fatal(err)
	}
	if err := st.Snapshot([]byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(NewTickRecord(sampleTick(1, 1))); err != nil {
		t.Fatal(err)
	}
	if err := st.Snapshot([]byte("newer")); err != nil {
		t.Fatal(err)
	}
	st.Close()
	// Corrupt the newest snapshot: recovery must fall back to the older one
	// and replay the records after it.
	newest := snapshotPaths(dir)[0]
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec := mustOpenClose(t, dir)
	if string(rec.Snapshot) != "good" {
		t.Fatalf("snapshot blob = %q, want fallback to the older snapshot", rec.Snapshot)
	}
	if len(rec.Records) != 1 {
		t.Fatalf("tail records = %d, want the 1 after the fallback snapshot", len(rec.Records))
	}
}

func TestReadDirIsNonDestructive(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{})
	if err := st.Append(NewTickRecord(sampleTick(0, 1))); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	// Read the live directory while the writer still owns it.
	rec, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 1 {
		t.Fatalf("read-only scan saw %d records, want 1", len(rec.Records))
	}
	if err := st.Append(NewTickRecord(sampleTick(1, 1))); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec2 := mustOpenClose(t, dir)
	if len(rec2.Records) != 2 {
		t.Fatalf("writer lost records after a concurrent ReadDir: %d", len(rec2.Records))
	}
}

func TestMetricsRender(t *testing.T) {
	var buf strings.Builder
	WriteMetrics(&buf, Stats{Appends: 12, Fsyncs: 3, Recovered: true, Replayed: 7})
	out := buf.String()
	for _, want := range []string{
		"store_appends_total 12",
		"store_fsyncs_total 3",
		"store_recovered 1",
		"store_replayed_records 7",
		"store_snapshot_age_seconds -1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}

func TestOpenRejectsBadOptions(t *testing.T) {
	if _, _, err := Open(t.TempDir(), Options{SegmentBytes: 12}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("tiny segment err = %v", err)
	}
	if _, _, err := Open(t.TempDir(), Options{SyncEvery: -1}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("negative sync err = %v", err)
	}
}

func TestOpenOnFilePathFails(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path, Options{}); err == nil {
		t.Fatal("opening a file path as a data dir must fail")
	}
}

func TestAppendTickFastPath(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if err := st.AppendTick(sampleTick(i, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := mustOpenClose(t, dir)
	if len(rec.Records) != 5 {
		t.Fatalf("recovered %d records, want 5", len(rec.Records))
	}
	for i, r := range rec.Records {
		got, err := DecodeTick(r)
		if err != nil {
			t.Fatal(err)
		}
		want := sampleTick(i, 3)
		if got.Tick != want.Tick || got.Readings != want.Readings {
			t.Fatalf("record %d: %+v", i, got)
		}
		for j := range want.Shard {
			if got.Shard[j] != want.Shard[j] {
				t.Fatalf("record %d shard %d: %v != %v (the reused buffer must not corrupt frames)", i, j, got.Shard[j], want.Shard[j])
			}
		}
	}
}
