package lint

import (
	"go/ast"
	"regexp"
)

// WalltimeConfig scopes the walltime analyzer.
type WalltimeConfig struct {
	// ForbiddenPkgs are package-path suffixes (see pathMatches) where every
	// wall-clock call is flagged: the deterministic replay surface.
	ForbiddenPkgs []string
	// RestrictedFuncs maps a package-path suffix to a regexp of function
	// names (methods match on the bare method name) inside which wall-clock
	// calls are flagged even though the rest of the package is free to use
	// the clock. This is how the telemetry replay/restore paths are covered
	// without forbidding the clock in the live tick loop.
	RestrictedFuncs map[string]*regexp.Regexp
}

// wallClockFuncs are the time package entry points that read the wall
// clock or start wall-clock timers.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "Tick": true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// Walltime returns the walltime analyzer.
//
// Invariant guarded: the replay surface must be a pure function of the
// journal. Crash recovery, standby replay and the byte-identical
// equivalence tests all re-execute these paths at a different wall-clock
// time than the original run; any time.Now/time.Since/argless timer that
// leaks into a decision makes replay diverge. Genuine measurement sites —
// latency records, liveness timeouts, heartbeats — carry
// //gridlint:allow walltime(reason) so every clock read in the replay
// surface is a reviewed, justified exception.
func Walltime(cfg WalltimeConfig) *Analyzer {
	return &Analyzer{
		Name: "walltime",
		Doc:  "forbids wall-clock reads and wall-clock timers in the deterministic replay surface",
		Run: func(pass *Pass) error {
			forbidden := pathMatches(pass.PkgPath, cfg.ForbiddenPkgs)
			var funcRe *regexp.Regexp
			for suffix, re := range cfg.RestrictedFuncs {
				if pathMatches(pass.PkgPath, []string{suffix}) {
					funcRe = re
					break
				}
			}
			if !forbidden && funcRe == nil {
				return nil
			}
			for _, f := range pass.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					if !forbidden && !funcRe.MatchString(fd.Name.Name) {
						continue
					}
					reportWallClockCalls(pass, fd.Body)
				}
			}
			return nil
		},
	}
}

func reportWallClockCalls(pass *Pass, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := callee(pass.TypesInfo, call)
		if f == nil || f.Pkg() == nil || f.Pkg().Path() != "time" {
			return true
		}
		if wallClockFuncs[f.Name()] && isPkgFunc(f, "time", f.Name()) {
			pass.Reportf(call.Pos(),
				"time.%s in the deterministic replay surface: replay re-executes this path at a different wall-clock time; derive time from the journal or annotate a genuine measurement site",
				f.Name())
		}
		return true
	})
}
