// Package benchrun hosts the repo's perf-trajectory benchmark bodies: the
// hot paths whose floors the project tracks release over release in
// BENCH_gridd.json. Each body is an ordinary func(*testing.B), so the same
// code runs under `go test -bench` (via the wrappers in bench_test.go) and
// under cmd/benchrec, which executes them with testing.Benchmark and appends
// the machine-readable results CI gates on.
//
// The _traced variants run the identical workload with the trace subsystem
// enabled (package trace's global switch on, ring allocated). They exist to
// hold the tracing tentpole to its overhead budget: enabling tracing must
// not move the journal-append or wire-codec floors by more than a few
// percent, because the disabled-path cost is one atomic load and untraced
// envelopes encode byte-identically. The _ctx wire-codec variants carry a
// stamped trace context in the envelope — the true cost of tracing a frame
// (18 extra bytes on the wire), reported for the trajectory but not gated
// against the untraced floor.
package benchrun

import (
	"fmt"
	"os"
	"testing"
	"time"

	"loadbalance/internal/bus"
	"loadbalance/internal/health"
	"loadbalance/internal/message"
	"loadbalance/internal/obsplane"
	"loadbalance/internal/protocol"
	"loadbalance/internal/store"
	"loadbalance/internal/trace"
	"loadbalance/internal/tsdb"
	"loadbalance/internal/units"
)

// Result is one benchmark body's measured floor.
type Result struct {
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	N           int     `json:"n"` // iterations of the selected (fastest) run
	// PairOverheadPct is set only on a RunPair traced result: the best
	// same-round overhead vs the untraced twin, in percent. Per-round ratios
	// cancel machine noise that drifts between rounds, so this — not the
	// ratio of the recorded floors — is what an overhead gate should read.
	PairOverheadPct *float64 `json:"pairOverheadPct,omitempty"`
}

// Def names one registered benchmark body.
type Def struct {
	Name string
	F    func(*testing.B)
}

// Defs lists the tracked benchmark bodies in reporting order.
func Defs() []Def {
	return []Def{
		{"journal_append", JournalAppend},
		{"journal_append_traced", JournalAppendTraced},
		{"wire_codec_table", WireCodecTable},
		{"wire_codec_table_traced", WireCodecTableTraced},
		{"wire_codec_table_ctx", WireCodecTableCtx},
		{"wire_codec_bid", WireCodecBid},
		{"wire_codec_bid_traced", WireCodecBidTraced},
		{"wire_codec_bid_ctx", WireCodecBidCtx},
		{"span_start_end", SpanStartEnd},
		{"span_disabled", SpanDisabled},
		{"histogram_observe", HistogramObserve},
		{"log_event_disabled", LogEventDisabled},
		{"feedback_score_compute", FeedbackScoreCompute},
		{"obs_workload", ObsWorkload},
		{"obs_workload_streamed", ObsWorkloadStreamed},
		{"tsdb_append", TsdbAppend},
		{"tsdb_range_query", TsdbRangeQuery},
		{"tsdb_workload", TsdbWorkload},
		{"tsdb_workload_scraped", TsdbWorkloadScraped},
	}
}

// Run executes one body under testing.Benchmark `rounds` times and keeps the
// fastest round — the floor, which is what a regression gate should compare
// (the slower rounds measure scheduler noise, not the code). A discarded
// warm-up round runs first so the recorded rounds never pay cold page-cache
// or frequency-scaling costs that would skew pairwise overhead comparisons.
func Run(def Def, rounds int) Result {
	if rounds < 1 {
		rounds = 1
	}
	testing.Benchmark(def.F)
	var best testing.BenchmarkResult
	for i := 0; i < rounds; i++ {
		r := testing.Benchmark(def.F)
		if i == 0 || nsPerOp(r) < nsPerOp(best) {
			best = r
		}
	}
	return Result{
		NsPerOp:     nsPerOp(best),
		AllocsPerOp: best.AllocsPerOp(),
		BytesPerOp:  best.AllocedBytesPerOp(),
		N:           best.N,
	}
}

// RunPair measures an overhead pair (an untraced floor and its traced twin)
// with the rounds interleaved — plain, traced, plain, traced — so a noisy
// neighbour or frequency dip hits both sides of the comparison instead of
// biasing one. The floors are the per-side minima, like Run's.
func RunPair(plain, traced Def, rounds int) (Result, Result) {
	if rounds < 1 {
		rounds = 1
	}
	testing.Benchmark(plain.F)
	testing.Benchmark(traced.F)
	var bestP, bestT testing.BenchmarkResult
	bestRatio := 0.0
	for i := 0; i < rounds; i++ {
		rp := testing.Benchmark(plain.F)
		rt := testing.Benchmark(traced.F)
		if i == 0 || nsPerOp(rp) < nsPerOp(bestP) {
			bestP = rp
		}
		if i == 0 || nsPerOp(rt) < nsPerOp(bestT) {
			bestT = rt
		}
		if p := nsPerOp(rp); p > 0 {
			if r := nsPerOp(rt) / p; i == 0 || r < bestRatio {
				bestRatio = r
			}
		}
	}
	toResult := func(r testing.BenchmarkResult) Result {
		return Result{NsPerOp: nsPerOp(r), AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp(), N: r.N}
	}
	resP, resT := toResult(bestP), toResult(bestT)
	if bestRatio > 0 {
		over := (bestRatio - 1) * 100
		resT.PairOverheadPct = &over
	}
	return resP, resT
}

// nsPerOp is the float ns/op (testing's integer NsPerOp truncates sub-ns
// differences that matter on the 8ns disabled-span path).
func nsPerOp(r testing.BenchmarkResult) float64 {
	if r.N <= 0 {
		return 0
	}
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

// withTracing runs f with the global tracer enabled, restoring the disabled
// default after.
func withTracing(b *testing.B, f func(*testing.B)) {
	trace.Enable("bench", 4096)
	defer trace.Disable()
	f(b)
}

// JournalAppend measures the durability hot path: meter-batch checkpoint
// records appended to the write-ahead journal with the live loop's commit
// cadence (one flush per 64 records) and a final fsync — the same workload
// as bench_test.go's BenchmarkJournalAppend.
func JournalAppend(b *testing.B) {
	dir, err := os.MkdirTemp("", "benchrun-journal-*")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, _, err := store.Open(dir, store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	cp := store.TickCheckpoint{Readings: 512, Batches: 4, Shard: make([]float64, 16)}
	for i := range cp.Shard {
		cp.Shard[i] = 10 + float64(i)/16
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp.Tick = i
		if err := st.AppendTick(cp); err != nil {
			b.Fatal(err)
		}
		if i%64 == 63 {
			if err := st.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := st.Sync(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// JournalAppendTraced is JournalAppend with tracing enabled — the overhead
// gate for the trace subsystem on the durability path.
func JournalAppendTraced(b *testing.B) { withTracing(b, JournalAppend) }

// codecEnvelope builds one of the two envelope shapes that dominate wire
// traffic: the UA's reward-table announcement (largest frame) or a
// customer's cut-down bid (smallest, highest count). withCtx stamps a trace
// context, growing the binary frame by the 18-byte trace field.
func codecEnvelope(b *testing.B, kind string, withCtx bool) message.Envelope {
	b.Helper()
	var env message.Envelope
	var err error
	switch kind {
	case "table":
		tab, terr := protocol.StandardTable(42.5)
		if terr != nil {
			b.Fatal(terr)
		}
		start := time.Unix(1700000000, 0)
		env, err = message.NewEnvelope("ua", "", "s", tab.Message(units.Interval{Start: start, End: start.Add(2 * time.Hour)}, 1))
	case "bid":
		env, err = message.NewEnvelope("c01", "ua", "s", message.CutDownBid{Round: 1, CutDown: 0.2})
	default:
		b.Fatalf("unknown envelope kind %q", kind)
	}
	if err != nil {
		b.Fatal(err)
	}
	if withCtx {
		env.TraceID, env.SpanID = 0x1122334455667788, 0x99aabbccddeeff00
	}
	return env
}

// runWireCodec measures one encode+decode round trip through the v2 binary
// TCP framing.
func runWireCodec(b *testing.B, env message.Envelope) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data := bus.EncodeEnvelopeFrame(nil, env)
		got, n, err := bus.DecodeEnvelopeFrame(data)
		if err != nil || n != len(data) || got.Kind != env.Kind {
			b.Fatalf("decode: %v (%d of %d bytes)", err, n, len(data))
		}
		b.SetBytes(int64(len(data)))
	}
}

// WireCodecTable measures the reward-table announcement frame, untraced.
func WireCodecTable(b *testing.B) { runWireCodec(b, codecEnvelope(b, "table", false)) }

// WireCodecTableTraced is WireCodecTable with tracing enabled but the
// envelope untraced — the always-on cost, which must be zero because an
// untraced envelope encodes byte-identically.
func WireCodecTableTraced(b *testing.B) {
	withTracing(b, func(b *testing.B) { runWireCodec(b, codecEnvelope(b, "table", false)) })
}

// WireCodecTableCtx carries a stamped trace context in the frame.
func WireCodecTableCtx(b *testing.B) {
	withTracing(b, func(b *testing.B) { runWireCodec(b, codecEnvelope(b, "table", true)) })
}

// WireCodecBid measures the cut-down bid frame, untraced.
func WireCodecBid(b *testing.B) { runWireCodec(b, codecEnvelope(b, "bid", false)) }

// WireCodecBidTraced is WireCodecBid with tracing enabled, envelope untraced.
func WireCodecBidTraced(b *testing.B) {
	withTracing(b, func(b *testing.B) { runWireCodec(b, codecEnvelope(b, "bid", false)) })
}

// WireCodecBidCtx carries a stamped trace context in the bid frame.
func WireCodecBidCtx(b *testing.B) {
	withTracing(b, func(b *testing.B) { runWireCodec(b, codecEnvelope(b, "bid", true)) })
}

// SpanStartEnd measures one root-span open+close on an enabled tracer —
// the per-span cost every instrumented operation pays when tracing is on.
func SpanStartEnd(b *testing.B) {
	withTracing(b, func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sp := trace.Root("bench.op")
			sp.End()
		}
	})
}

// SpanDisabled measures the same call pair with tracing off — the cost the
// whole instrumented stack pays in the default configuration.
func SpanDisabled(b *testing.B) {
	trace.Disable()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := trace.Root("bench.op")
		sp.End()
	}
}

// HistogramObserve measures one latency observation — paid per round,
// session, tick and sampled journal append whether or not tracing is on.
func HistogramObserve(b *testing.B) {
	h := trace.GetHistogram("benchrun_observe_seconds")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(1000 + i%1000))
	}
}

// LogEventDisabled measures a below-threshold structured log call — the
// cost every migrated log site pays when its level is gated off, which is
// the default state of the debug-level sites on the hot paths. The gate is
// one atomic load and the typed fields keep the variadic slice off the
// heap, so this floor carries an absolute budget (25ns/op) in benchrec
// -check rather than only a relative one.
func LogEventDisabled(b *testing.B) {
	l, err := health.New(health.Config{Proc: "bench", MinLevel: health.Warn, StderrLevel: health.Off})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Log(health.Debug, "bus", "client inbox full",
			health.Str("client", "c01"), health.Int("dropped", int64(i)))
	}
	if b.N > 0 {
		if total, _, _ := l.Stats(); total != 0 {
			b.Fatalf("disabled level recorded %d events", total)
		}
	}
}

// FeedbackScoreCompute measures one composite-score recomputation — runtime
// stats read, histogram percentile lookup and the clamp-linear weighting —
// the work the live loop adds to every tick.
func FeedbackScoreCompute(b *testing.B) {
	s := health.NewScorer(health.Sources{
		Utilization:    func() float64 { return 1.1 },
		ReplicationLag: func() float64 { return 12 },
	}, health.DefaultBudgets(), health.DefaultWeights())
	defer health.UnregisterGauge("feedback_score")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Compute()
	}
}

// obsWorkloadBody runs the instrumented hot path the fleet observability
// plane ships: per op, a session-labelled root span with four shard
// children, one histogram observation and a sampled Info log event — the
// per-tick shape of a live daemon. streamed additionally runs a real hub
// and emitter over loopback TCP draining the same rings, so the pair holds
// the streaming tentpole to its overhead budget: the emitter drains on its
// own ticker, and the instrumented path must not slow down because its
// rings are being shipped.
func obsWorkloadBody(b *testing.B, streamed bool) {
	// A deliberately small ring: the benchmark produces spans ~1000x
	// faster than a live daemon, so the ring wraps between drains no
	// matter its size and each drain ships one full ring as its batch.
	// The ring size is therefore the drain batch size, and a live-daemon
	// default (4096+) would turn the pair into a single-core batch-encode
	// stress test. 1024 keeps the shipped volume proportionate while the
	// wrap losses exercise the missed accounting the plane is built on.
	tr := trace.Enable("bench", 1024)
	defer trace.Disable()
	l, err := health.New(health.Config{Proc: "bench", MinLevel: health.Info, StderrLevel: health.Off})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	h := trace.GetHistogram("benchrun_observe_seconds")
	if streamed {
		hub, err := obsplane.StartHub(obsplane.HubConfig{Addr: "127.0.0.1:0"})
		if err != nil {
			b.Fatal(err)
		}
		defer hub.Close()
		// The production-default drain interval (250ms): a one-second
		// benchmark round ships the full wrapped ring several times, which
		// is the shape a live daemon streams at. Tightening the interval
		// turns the pair into a drain stress test instead of an overhead
		// gate — the workload generates spans ~1000x faster than a real
		// tick loop, so each drain already carries a maximal batch.
		em := obsplane.StartEmitter(obsplane.EmitterConfig{
			Hub:    hub.Addr(),
			Proc:   "bench",
			Role:   "bench",
			Logger: l,
			Tracer: func() *trace.Tracer { return tr },
		})
		defer em.Close()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.Root("bench.tick")
		sp.SetSession("bench")
		for s := 0; s < 4; s++ {
			child := tr.Child(sp.Context(), "bench.shard")
			child.End()
		}
		h.Observe(time.Duration(1000 + i%1000))
		if i%64 == 0 {
			l.Log(health.Info, "bench", "op complete", health.Int("op", int64(i)))
		}
		sp.End()
	}
	b.StopTimer()
}

// ObsWorkload measures the instrumented per-tick path with tracing and
// logging on but nothing consuming the rings — the local-only floor.
func ObsWorkload(b *testing.B) { obsWorkloadBody(b, false) }

// ObsWorkloadStreamed is ObsWorkload with a live obs hub and emitter
// streaming the rings over loopback — the overhead gate for the fleet
// observability plane.
func ObsWorkloadStreamed(b *testing.B) { obsWorkloadBody(b, true) }

// TsdbAppend measures one history-store append — the per-sample cost every
// scrape pays, times the series count, once per interval. Round-robins over
// 16 series so the map lookup and per-series ring both stay on the path.
func TsdbAppend(b *testing.B) {
	st := tsdb.New(tsdb.Config{})
	names := make([]string, 16)
	for i := range names {
		names[i] = fmt.Sprintf("bench_series_%02d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Append(names[i%len(names)], int64(i/len(names)+1), float64(i))
	}
	b.StopTimer()
}

// TsdbRangeQuery measures one derived range query — a rate() over a full
// raw ring at the default 1s step, the shape /query and gridctl plot issue.
func TsdbRangeQuery(b *testing.B) {
	st := tsdb.New(tsdb.Config{})
	const n = 1024
	const stepUs = int64(time.Second / time.Microsecond)
	for i := 0; i < n; i++ {
		st.Append("bench_counter", int64(i+1)*stepUs, float64(i*3))
	}
	e, err := tsdb.ParseExpr("rate(bench_counter[10s])")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pts := st.Query(e, 0, n*stepUs, stepUs); len(pts) == 0 {
			b.Fatal("empty query result")
		}
	}
	b.StopTimer()
}

// tsdbWorkloadBody runs the instrumented hot path the history scraper
// samples: per op, one histogram observation into a private registry.
// scraped additionally runs a live Scraper snapshotting that registry into
// a store on a tight interval, so the pair holds the metrics-history
// tentpole to its overhead budget: the observe path must not slow down
// because a scraper is reading the registry concurrently.
func tsdbWorkloadBody(b *testing.B, scraped bool) {
	reg := trace.NewRegistry()
	h := reg.Histogram("tsdb_bench_seconds")
	if scraped {
		st := tsdb.New(tsdb.Config{})
		// 50ms: ~20 scrapes per one-second round — far denser than the 1s
		// production default, so the pair overstates contention rather than
		// missing it.
		sc := tsdb.NewScraper(tsdb.ScrapeConfig{Store: st, Interval: 50 * time.Millisecond, Registry: reg})
		sc.Start()
		defer sc.Close()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(1000 + i%1000))
	}
	b.StopTimer()
}

// TsdbWorkload measures the instrumented observe path with no scraper — the
// unscraped floor.
func TsdbWorkload(b *testing.B) { tsdbWorkloadBody(b, false) }

// TsdbWorkloadScraped is TsdbWorkload with a live history scraper
// snapshotting the registry — the overhead gate for metrics history.
func TsdbWorkloadScraped(b *testing.B) { tsdbWorkloadBody(b, true) }

// Lookup returns the named def.
func Lookup(name string) (Def, error) {
	for _, d := range Defs() {
		if d.Name == name {
			return d, nil
		}
	}
	return Def{}, fmt.Errorf("benchrun: unknown benchmark %q", name)
}
