package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// tickRec builds a small deterministic tick record for streaming tests.
func tickRec(i int) Record {
	return NewTickRecord(TickCheckpoint{Tick: i, Shard: []float64{float64(i), float64(i) / 2}, Readings: int64(i), Batches: 1})
}

// drainTail reads everything currently flushed, batch by batch.
func drainTail(t *testing.T, tl *Tailer, maxBytes int) []Record {
	t.Helper()
	var out []Record
	for {
		batch, err := tl.Next(maxBytes)
		if err != nil {
			t.Fatalf("tail: %v", err)
		}
		if batch.Count == 0 {
			return out
		}
		recs, err := DecodeFrames(batch.Frames)
		if err != nil {
			t.Fatalf("decode frames: %v", err)
		}
		if len(recs) != batch.Count {
			t.Fatalf("batch claims %d records, decoded %d", batch.Count, len(recs))
		}
		for _, r := range recs {
			body := append([]byte(nil), r.Body...)
			out = append(out, Record{Kind: r.Kind, Body: body})
		}
	}
}

// TestTailerStreamsAcrossRotation tails a journal whose tiny segments force
// many rotations: the cursor must deliver every record exactly once, in
// order, across segment boundaries.
func TestTailerStreamsAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, Options{SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	tl, err := OpenTail(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()

	const n = 500
	var got []Record
	for i := 0; i < n; i++ {
		if err := st.Append(tickRec(i)); err != nil {
			t.Fatal(err)
		}
		if i%37 == 0 {
			if err := st.Commit(); err != nil {
				t.Fatal(err)
			}
			got = append(got, drainTail(t, tl, 512)...)
		}
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	got = append(got, drainTail(t, tl, 512)...)

	if len(got) != n {
		t.Fatalf("tailed %d records, want %d", len(got), n)
	}
	if st.Stats().Rotations == 0 {
		t.Fatal("test did not exercise rotation; shrink the segment size")
	}
	for i, r := range got {
		cp, err := DecodeTick(r)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if cp.Tick != i {
			t.Fatalf("record %d carries tick %d", i, cp.Tick)
		}
	}
	if tl.Pos() != uint64(n+1) {
		t.Fatalf("cursor at %d, want %d", tl.Pos(), n+1)
	}
}

// TestTailerResumesMidJournal opens a cursor after a known sequence number
// and must see only the records beyond it.
func TestTailerResumesMidJournal(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, Options{SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 100; i++ {
		if err := st.Append(tickRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	tl, err := OpenTail(dir, 60)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	got := drainTail(t, tl, 0)
	if len(got) != 40 {
		t.Fatalf("tailed %d records after seq 60, want 40", len(got))
	}
	cp, err := DecodeTick(got[0])
	if err != nil {
		t.Fatal(err)
	}
	if cp.Tick != 60 { // record seq 61 carries tick 60 (ticks count from 0)
		t.Fatalf("first resumed record carries tick %d, want 60", cp.Tick)
	}
}

// TestTailerGapAfterPrune pins the cursor contract the replication sender
// depends on: a reader positioned at a rotated-away (pruned) segment gets a
// clean ErrGap — not EOF, not garbage — both at open and mid-tail.
func TestTailerGapAfterPrune(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, Options{SegmentBytes: 1024, KeepSnapshots: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// A lagging follower holds its cursor at the very beginning.
	lagging, err := OpenTail(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer lagging.Close()

	for i := 0; i < 400; i++ {
		if err := st.Append(tickRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Two snapshots: pruning keeps only the newest and removes every segment
	// covered by it, so the journal's head moves past the lagging cursor.
	if err := st.Snapshot([]byte("state-a")); err != nil {
		t.Fatal(err)
	}
	for i := 400; i < 500; i++ {
		if err := st.Append(tickRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Snapshot([]byte("state-b")); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenTail(dir, 0); !errors.Is(err, ErrGap) {
		t.Fatalf("OpenTail at pruned position returned %v, want ErrGap", err)
	}
	if _, err := lagging.Next(0); !errors.Is(err, ErrGap) {
		t.Fatalf("lagging cursor returned %v, want ErrGap", err)
	}

	// Recovery from the gap: bootstrap from the latest snapshot, then tail.
	seq, blob, ok := LatestSnapshotData(dir)
	if !ok {
		t.Fatal("no snapshot after two Snapshot calls")
	}
	if string(blob) != "state-b" {
		t.Fatalf("latest snapshot blob = %q", blob)
	}
	tl, err := OpenTail(dir, seq)
	if err != nil {
		t.Fatalf("OpenTail at snapshot position: %v", err)
	}
	defer tl.Close()
	if err := st.Append(tickRec(500)); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	got := drainTail(t, tl, 0)
	if len(got) != 1 {
		t.Fatalf("tailed %d records beyond the snapshot, want 1", len(got))
	}
}

// TestTailerBeyondEndIsGap: a cursor claiming records the journal never wrote
// is divergence and must fail loudly, not deliver from a guessed position.
func TestTailerBeyondEndIsGap(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 10; i++ {
		if err := st.Append(tickRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTail(dir, 25); !errors.Is(err, ErrGap) {
		t.Fatalf("OpenTail beyond the journal end returned %v, want ErrGap", err)
	}
}

// TestSnapshotKeepTwoPruningUnderConcurrentAppend hammers the snapshot
// cadence from one goroutine while another appends: at every point at most
// KeepSnapshots snapshots survive on disk, pruning never touches the active
// segment, and the directory recovers cleanly afterwards.
func TestSnapshotKeepTwoPruningUnderConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, Options{SegmentBytes: 2048, KeepSnapshots: 2})
	if err != nil {
		t.Fatal(err)
	}

	const n = 2000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := st.Append(tickRec(i)); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < 40; i++ {
		if err := st.Snapshot([]byte(fmt.Sprintf("state-%d", i))); err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		if got := len(snapshotPaths(dir)); got > 2 {
			t.Fatalf("%d snapshots on disk after prune, want <= 2", got)
		}
	}
	wg.Wait()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotSeq == 0 {
		t.Fatal("no snapshot recovered")
	}
	if rec.LastSeq != n {
		t.Fatalf("recovered last seq %d, want %d", rec.LastSeq, n)
	}
	if rec.TornBytes != 0 {
		t.Fatalf("clean close left %d torn bytes", rec.TornBytes)
	}
}

// TestInstallSnapshotBootstrapsEmptyStore covers the replica bootstrap path:
// an empty store installs a remote snapshot at position seq, restarts its
// journal at seq+1, accepts replicated frames from there, and recovers as if
// it had written the snapshot itself.
func TestInstallSnapshotBootstrapsEmptyStore(t *testing.T) {
	dir := t.TempDir()
	st, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Empty() {
		t.Fatal("fresh dir reported prior state")
	}
	if err := st.InstallSnapshot(120, []byte("remote-state")); err != nil {
		t.Fatal(err)
	}

	// Replicated frames continue at 121.
	frames := EncodeFrame(nil, tickRec(120))
	frames = EncodeFrame(frames, tickRec(121))
	recs, sealed, err := st.AppendFrames(121, frames)
	if err != nil || len(recs) != 2 || sealed {
		t.Fatalf("AppendFrames = (%d, %v, %v), want (2, false, nil)", len(recs), sealed, err)
	}
	if cp, derr := DecodeTick(recs[0]); derr != nil || cp.Tick != 120 {
		t.Fatalf("decoded record 0 = (%+v, %v), want tick 120", cp, derr)
	}
	// A non-contiguous run is refused.
	if _, _, err := st.AppendFrames(200, EncodeFrame(nil, tickRec(0))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("gap append = %v, want ErrCorrupt", err)
	}
	// A corrupted frame is refused before anything lands.
	bad := EncodeFrame(nil, tickRec(122))
	bad[len(bad)-1] ^= 0xFF
	if _, _, err := st.AppendFrames(123, bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt append = %v, want ErrCorrupt", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.SnapshotSeq != 120 || string(got.Snapshot) != "remote-state" {
		t.Fatalf("recovered snapshot (%d, %q)", got.SnapshotSeq, got.Snapshot)
	}
	if got.LastSeq != 122 || len(got.Records) != 2 {
		t.Fatalf("recovered last seq %d with %d tail records, want 122 with 2", got.LastSeq, len(got.Records))
	}

	// Install on a non-empty store must be refused.
	st2, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if err := st2.InstallSnapshot(500, []byte("x")); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("install on non-empty store = %v, want ErrBadConfig", err)
	}
}

// TestAppendFramesSealPropagates: a replicated seal record seals the replica
// journal too — a clean primary shutdown is a clean replica shutdown.
func TestAppendFramesSealPropagates(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	frames := EncodeFrame(nil, tickRec(0))
	frames = EncodeFrame(frames, sealRecord())
	recs, sealed, err := st.AppendFrames(1, frames)
	if err != nil || len(recs) != 2 || !sealed {
		t.Fatalf("AppendFrames = (%d, %v, %v), want (2, true, nil)", len(recs), sealed, err)
	}
	if err := st.Append(tickRec(1)); !errors.Is(err, ErrSealed) {
		t.Fatalf("append after replicated seal = %v, want ErrSealed", err)
	}
	rec, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Sealed {
		t.Fatal("replicated seal not visible to recovery")
	}
}

// TestTailerSurvivesOrphanNames: non-segment files and stray names in the
// directory never confuse the cursor.
func TestTailerSurvivesOrphanNames(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 5; i++ {
		if err := st.Append(tickRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "wal-notahexname.seg"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	tl, err := OpenTail(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	if got := drainTail(t, tl, 0); len(got) != 5 {
		t.Fatalf("tailed %d records, want 5", len(got))
	}
}
