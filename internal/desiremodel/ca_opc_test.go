package desiremodel

import (
	"testing"

	"loadbalance/internal/desire"
	"loadbalance/internal/kb"
)

// runCAOPC runs the Figure 4 composition and indexes output by predicate.
func runCAOPC(t *testing.T, facts []kb.Fact) map[string]string {
	t.Helper()
	opc, err := NewCAOwnProcessControl()
	if err != nil {
		t.Fatal(err)
	}
	out, err := desire.Run(opc, facts)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]string)
	for _, f := range out {
		if f.Truth != kb.True {
			continue
		}
		switch f.Atom.Args[0].Kind {
		case kb.KindConst:
			got[f.Atom.Pred] = f.Atom.Args[0].Name
		case kb.KindString:
			got[f.Atom.Pred] = f.Atom.Args[0].Str
		}
	}
	return got
}

func TestStrategySelectionPerAttitude(t *testing.T) {
	tests := []struct {
		attitude string
		want     string
	}{
		{AttitudeEager, BidGreedy},
		{AttitudeCautious, BidIncremental},
		{AttitudePatient, BidHoldout},
	}
	for _, tt := range tests {
		t.Run(tt.attitude, func(t *testing.T) {
			got := runCAOPC(t, []kb.Fact{
				{Atom: kb.A("customer_attitude", kb.C(tt.attitude)), Truth: kb.True},
				{Atom: kb.A("devices_heterogeneous", kb.N(1)), Truth: kb.True},
			})
			if got["bidding_strategy"] != tt.want {
				t.Fatalf("strategy = %q, want %q", got["bidding_strategy"], tt.want)
			}
			if got["allocation_strategy"] != AllocCheapestFirst {
				t.Fatalf("allocation = %q", got["allocation_strategy"])
			}
		})
	}
}

func TestAllocationStrategyForHomogeneousDevices(t *testing.T) {
	got := runCAOPC(t, []kb.Fact{
		{Atom: kb.A("customer_attitude", kb.C(AttitudeEager)), Truth: kb.True},
		{Atom: kb.A("devices_heterogeneous", kb.N(0)), Truth: kb.True},
	})
	if got["allocation_strategy"] != AllocProportional {
		t.Fatalf("allocation = %q, want proportional", got["allocation_strategy"])
	}
}

func TestProcessEvaluationVerdicts(t *testing.T) {
	tests := []struct {
		name    string
		award   float64
		surplus float64
		want    string
	}{
		{name: "good deal", award: 1, surplus: 3.8, want: "satisfactory"},
		{name: "break even", award: 1, surplus: 0, want: "satisfactory"},
		{name: "bad deal", award: 1, surplus: -2, want: "reconsider_strategy"},
		{name: "no deal", award: 0, surplus: 0, want: "no_deal"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := runCAOPC(t, []kb.Fact{
				{Atom: kb.A("customer_attitude", kb.C(AttitudeEager)), Truth: kb.True},
				{Atom: kb.A("devices_heterogeneous", kb.N(1)), Truth: kb.True},
				{Atom: kb.A("award_received", kb.N(tt.award)), Truth: kb.True},
				{Atom: kb.A("surplus", kb.N(tt.surplus)), Truth: kb.True},
			})
			if got["bidding_verdict"] != tt.want {
				t.Fatalf("verdict = %q, want %q", got["bidding_verdict"], tt.want)
			}
		})
	}
}
