package main

import (
	"strings"
	"testing"
)

func TestRunPaperScenario(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatalf("default run: %v", err)
	}
}

func TestRunMethodVariants(t *testing.T) {
	for _, method := range []string{"offer", "request_for_bids", "auto"} {
		if err := run([]string{"-method", method}); err != nil {
			t.Fatalf("method %s: %v", method, err)
		}
	}
}

func TestRunPopulationScenario(t *testing.T) {
	if err := run([]string{"-scenario", "population", "-n", "8", "-seed", "3"}); err != nil {
		t.Fatalf("population run: %v", err)
	}
}

func TestRunWithFaultInjection(t *testing.T) {
	if err := run([]string{"-drop", "0.1", "-round-timeout", "25ms"}); err != nil {
		t.Fatalf("lossy run: %v", err)
	}
}

func TestRunAdaptiveBeta(t *testing.T) {
	if err := run([]string{"-beta", "0.5", "-adaptive"}); err != nil {
		t.Fatalf("adaptive run: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string
	}{
		{name: "unknown scenario", args: []string{"-scenario", "mars"}, want: "unknown scenario"},
		{name: "unknown method", args: []string{"-method", "telepathy"}, want: "unknown method"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := run(tt.args)
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error = %v, want %q", err, tt.want)
			}
		})
	}
}
