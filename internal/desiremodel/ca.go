package desiremodel

import (
	"fmt"
	"math"
	"sort"

	"loadbalance/internal/desire"
	"loadbalance/internal/kb"
)

// This file assembles the Customer Agent's Figure 5 composition,
// "cooperation management": interpretation of the announcement, bid
// generation, expected-gain calculation, bid choice, and the determination
// of implementation instructions for the Resource Consumer Agents.

// caOntology declares the CA model's information types.
func caOntology() (*kb.Ontology, error) {
	o := kb.NewOntology()
	steps := []error{
		o.DeclareSort("device", kb.SortAny),
		// Inputs.
		o.DeclarePred("announced_reward", kb.SortNumber, kb.SortNumber),       // cutdown, reward
		o.DeclarePred("required_reward", kb.SortNumber, kb.SortNumber),        // cutdown, min reward
		o.DeclarePred("savable", kb.SortString, kb.SortNumber, kb.SortNumber), // device, kwh, cost/kwh
		o.DeclarePred("expected_use", kb.SortNumber),
		// Intermediate and output.
		o.DeclarePred("possible_bid", kb.SortNumber),
		o.DeclarePred("expected_gain", kb.SortNumber, kb.SortNumber), // cutdown, gain
		o.DeclarePred("chosen_bid", kb.SortNumber),
		o.DeclarePred("instruction", kb.SortString, kb.SortNumber), // device, kwh to shed
	}
	for _, err := range steps {
		if err != nil {
			return nil, fmt.Errorf("desiremodel: ca ontology: %w", err)
		}
	}
	return o, nil
}

// generateBidsRules is "generate bids": every announced cut-down whose
// reward clears the requirement is a possible bid.
func generateBidsRules() (*kb.Base, error) {
	return kb.NewBase("generate_bids", kb.Rule{
		Name: "possible_if_reward_clears",
		If: []kb.Literal{
			kb.Pos(kb.A("announced_reward", kb.V("Cut"), kb.V("Off"))),
			kb.Pos(kb.A("required_reward", kb.V("Cut"), kb.V("Req"))),
		},
		Guards: []kb.Guard{{Op: kb.OpGeq, Left: kb.V("Off"), Right: kb.V("Req")}},
		Then:   []kb.Atom{kb.A("possible_bid", kb.V("Cut"))},
	})
}

// calculateGainTask is "calculate expected gain": gain = offered − required
// for every possible bid.
func calculateGainTask(ont *kb.Ontology) *desire.Task {
	return desire.NewTask("calculate_expected_gain", ont, func(in, out *kb.Store) (bool, error) {
		changed := false
		for _, pb := range in.Query(kb.A("possible_bid", kb.V("Cut"))) {
			cut := pb.Args[0].Num
			var offered, required float64
			for _, a := range in.Query(kb.A("announced_reward", kb.N(cut), kb.V("Off"))) {
				offered = a.Args[1].Num
			}
			for _, a := range in.Query(kb.A("required_reward", kb.N(cut), kb.V("Req"))) {
				required = a.Args[1].Num
			}
			atom := kb.A("expected_gain", kb.N(cut), kb.N(offered-required))
			if out.Holds(atom) {
				continue
			}
			if err := out.Assert(atom, kb.True); err != nil {
				return changed, err
			}
			changed = true
		}
		return changed, nil
	})
}

// chooseBidTask is "choose appropriate bid" + "select bid": the prototype's
// customer "chooses the highest acceptable cut-down as its preferred
// cut-down" (Section 6.2).
func chooseBidTask(ont *kb.Ontology) *desire.Task {
	return desire.NewTask("choose_appropriate_bid", ont, func(in, out *kb.Store) (bool, error) {
		best := math.Inf(-1)
		for _, a := range in.Query(kb.A("expected_gain", kb.V("Cut"), kb.V("G"))) {
			if cut := a.Args[0].Num; cut > best {
				best = cut
			}
		}
		if math.IsInf(best, -1) {
			return false, nil
		}
		atom := kb.A("chosen_bid", kb.N(best))
		if out.Holds(atom) {
			return false, nil
		}
		return true, out.Assert(atom, kb.True)
	})
}

// instructionsTask is "determine implementation instructions": given the
// chosen cut-down, shed devices cheapest-comfort-first until the saving is
// covered — the CA→RCA half the paper leaves for future work, made
// executable.
func instructionsTask(ont *kb.Ontology) *desire.Task {
	return desire.NewTask("determine_implementation_instructions", ont, func(in, out *kb.Store) (bool, error) {
		var chosen float64
		found := false
		for _, a := range in.Query(kb.A("chosen_bid", kb.V("Cut"))) {
			chosen = a.Args[0].Num
			found = true
		}
		if !found || chosen == 0 {
			return false, nil
		}
		var use float64
		for _, a := range in.Query(kb.A("expected_use", kb.V("U"))) {
			use = a.Args[0].Num
		}
		type tranche struct {
			device string
			kwh    float64
			cost   float64
		}
		var tranches []tranche
		for _, a := range in.Query(kb.A("savable", kb.V("D"), kb.V("K"), kb.V("C"))) {
			tranches = append(tranches, tranche{device: a.Args[0].Str, kwh: a.Args[1].Num, cost: a.Args[2].Num})
		}
		sort.Slice(tranches, func(i, j int) bool {
			if tranches[i].cost != tranches[j].cost {
				return tranches[i].cost < tranches[j].cost
			}
			return tranches[i].device < tranches[j].device
		})
		remaining := chosen * use
		changed := false
		for _, tr := range tranches {
			if remaining <= 1e-9 {
				break
			}
			take := tr.kwh
			if take > remaining {
				take = remaining
			}
			remaining -= take
			atom := kb.A("instruction", kb.S(tr.device), kb.N(take))
			if out.Holds(atom) {
				continue
			}
			if err := out.Assert(atom, kb.True); err != nil {
				return changed, err
			}
			changed = true
		}
		return changed, nil
	})
}

// NewCACooperationManagement assembles the Figure 5 composition.
func NewCACooperationManagement() (*desire.Composed, error) {
	ont, err := caOntology()
	if err != nil {
		return nil, err
	}
	gen, err := generateBidsRules()
	if err != nil {
		return nil, err
	}

	cm := desire.NewComposed("cooperation_management", ont, 0)
	children := []desire.Component{
		desire.NewReasoning("generate_bids", ont, gen, "possible_bid"),
		calculateGainTask(ont),
		chooseBidTask(ont),
		instructionsTask(ont),
	}
	for _, c := range children {
		if err := cm.AddChild(c); err != nil {
			return nil, err
		}
	}
	links := []desire.Link{
		{Name: "announcement_in", From: desire.Endpoint{Port: desire.In},
			To: desire.Endpoint{Component: "generate_bids", Port: desire.In}},
		{Name: "possible_to_gain", From: desire.Endpoint{Component: "generate_bids", Port: desire.Out},
			To: desire.Endpoint{Component: "calculate_expected_gain", Port: desire.In}},
		{Name: "tables_to_gain", From: desire.Endpoint{Port: desire.In},
			To: desire.Endpoint{Component: "calculate_expected_gain", Port: desire.In}},
		{Name: "gain_to_choice", From: desire.Endpoint{Component: "calculate_expected_gain", Port: desire.Out},
			To: desire.Endpoint{Component: "choose_appropriate_bid", Port: desire.In}},
		{Name: "choice_to_instructions", From: desire.Endpoint{Component: "choose_appropriate_bid", Port: desire.Out},
			To: desire.Endpoint{Component: "determine_implementation_instructions", Port: desire.In}},
		{Name: "resources_to_instructions", From: desire.Endpoint{Port: desire.In},
			To: desire.Endpoint{Component: "determine_implementation_instructions", Port: desire.In}},
		{Name: "bid_out", From: desire.Endpoint{Component: "choose_appropriate_bid", Port: desire.Out},
			To: desire.Endpoint{Port: desire.Out}},
		{Name: "instructions_out", From: desire.Endpoint{Component: "determine_implementation_instructions", Port: desire.Out},
			To: desire.Endpoint{Port: desire.Out}},
	}
	for _, l := range links {
		if err := cm.AddLink(l); err != nil {
			return nil, err
		}
	}
	err = cm.SetControl([]desire.Step{
		{Transfer: "announcement_in"},
		{Activate: "generate_bids"},
		{Transfer: "possible_to_gain"},
		{Transfer: "tables_to_gain"},
		{Activate: "calculate_expected_gain"},
		{Transfer: "gain_to_choice"},
		{Activate: "choose_appropriate_bid"},
		{Transfer: "choice_to_instructions"},
		{Transfer: "resources_to_instructions"},
		{Activate: "determine_implementation_instructions"},
		{Transfer: "bid_out"},
		{Transfer: "instructions_out"},
	})
	if err != nil {
		return nil, err
	}
	return cm, nil
}

// CABid is the Figure 5 composition's decision.
type CABid struct {
	CutDown float64
	// Instructions maps devices to the kWh each must shed.
	Instructions map[string]float64
}

// DecideBid runs the Figure 5 composition: announced and required reward
// tables (maps cut-down → reward), expected use and device savables in,
// chosen bid plus per-device shedding instructions out.
func DecideBid(announced, required map[float64]float64, expectedUse float64, savables map[string][2]float64) (CABid, error) {
	cm, err := NewCACooperationManagement()
	if err != nil {
		return CABid{}, err
	}
	var facts []kb.Fact
	for cut, r := range announced {
		facts = append(facts, kb.Fact{Atom: kb.A("announced_reward", kb.N(cut), kb.N(r)), Truth: kb.True})
	}
	for cut, r := range required {
		if math.IsInf(r, 1) {
			continue
		}
		facts = append(facts, kb.Fact{Atom: kb.A("required_reward", kb.N(cut), kb.N(r)), Truth: kb.True})
	}
	facts = append(facts, kb.Fact{Atom: kb.A("expected_use", kb.N(expectedUse)), Truth: kb.True})
	for device, kc := range savables {
		facts = append(facts, kb.Fact{
			Atom:  kb.A("savable", kb.S(device), kb.N(kc[0]), kb.N(kc[1])),
			Truth: kb.True,
		})
	}
	out, err := desire.Run(cm, facts)
	if err != nil {
		return CABid{}, err
	}
	bid := CABid{Instructions: make(map[string]float64)}
	for _, f := range out {
		if f.Truth != kb.True {
			continue
		}
		switch f.Atom.Pred {
		case "chosen_bid":
			if f.Atom.Args[0].Num > bid.CutDown {
				bid.CutDown = f.Atom.Args[0].Num
			}
		case "instruction":
			bid.Instructions[f.Atom.Args[0].Str] += f.Atom.Args[1].Num
		}
	}
	return bid, nil
}
