// Fixture: package-global math/rand draws globalrand must flag.
package flag

import "math/rand"

func draw() float64 {
	return rand.Float64() // want `package-global math/rand\.Float64`
}

func intn(n int) int {
	return rand.Intn(n) // want `package-global math/rand\.Intn`
}

func perm(n int) []int {
	return rand.Perm(n) // want `package-global math/rand\.Perm`
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `package-global math/rand\.Shuffle`
}

func reseed(seed int64) {
	rand.Seed(seed) // want `package-global math/rand\.Seed`
}

// The escape hatch, for the rare justified global draw.
func jitter() float64 {
	return rand.Float64() //gridlint:allow globalrand(fixture: pretend this jitter was reviewed)
}
