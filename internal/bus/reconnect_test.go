package bus

import (
	"fmt"
	"testing"
	"time"

	"loadbalance/internal/message"
	"loadbalance/internal/trace"
)

// ping builds a small valid envelope.
func ping(from, to string, round int) message.Envelope {
	env, err := message.NewEnvelope(from, to, "s", message.CutDownBid{Round: round, CutDown: 0.2})
	if err != nil {
		panic(err)
	}
	return env
}

// TestDialListFallsThrough: the first dead address is skipped, the live one
// answers.
func TestDialListFallsThrough(t *testing.T) {
	inner, err := NewInProc(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	srv, err := ListenAndServe("127.0.0.1:0", inner)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := DialList([]string{"127.0.0.1:1", srv.Addr()}, "c1")
	if err != nil {
		t.Fatalf("DialList: %v", err)
	}
	defer cli.Close()
	if got := cli.RemoteAddr(); got != srv.Addr() {
		t.Fatalf("connected to %s, want %s", got, srv.Addr())
	}

	if _, err := DialList([]string{"127.0.0.1:1"}, "c2"); err == nil {
		t.Fatal("DialList over only dead addresses must fail")
	}
}

// TestReconnectFailoverResumesSession is the client side of grid-head
// failover: two servers bridge the same bus (the stand-in for a primary and
// its promoted standby serving the same fleet); the client's first server
// dies mid-session, the Reconn client re-dials the list, re-registers under
// its own name, and envelopes keep flowing both ways on the same Inbox.
func TestReconnectFailoverResumesSession(t *testing.T) {
	inner, err := NewInProc(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	srvA, err := ListenAndServe("127.0.0.1:0", inner)
	if err != nil {
		t.Fatal(err)
	}
	srvB, err := ListenAndServe("127.0.0.1:0", inner)
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()

	// A local peer on the bridged bus plays the Utility Agent.
	uaInbox, err := inner.Register("ua", 16)
	if err != nil {
		t.Fatal(err)
	}

	cli, err := DialReconnecting([]string{srvA.Addr(), srvB.Addr()}, "c1", ReconnConfig{
		Redial: 20 * time.Millisecond,
		GiveUp: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	exchange := func(round int) {
		t.Helper()
		if err := cli.Send(ping("c1", "ua", round)); err != nil {
			t.Fatalf("round %d send: %v", round, err)
		}
		select {
		case env := <-uaInbox:
			if env.From != "c1" {
				t.Fatalf("round %d: ua saw sender %q", round, env.From)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("round %d never reached the ua", round)
		}
		if err := inner.Send(ping("ua", "c1", round)); err != nil {
			t.Fatalf("round %d reply: %v", round, err)
		}
		select {
		case env := <-cli.Inbox():
			if env.From != "ua" {
				t.Fatalf("round %d: client saw sender %q", round, env.From)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("round %d reply never reached the client", round)
		}
	}

	exchange(1)
	if cli.Addr() != srvA.Addr() {
		t.Fatalf("client on %s, want the primary %s", cli.Addr(), srvA.Addr())
	}

	// The primary dies. The client must resume on the standby under the
	// same name and finish the session.
	srvA.Close()
	deadline := time.Now().Add(5 * time.Second)
	for cli.Stats().Reconnects == 0 {
		if time.Now().After(deadline) {
			t.Fatal("client never reconnected")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Re-registration on the shared bus can race the old connection's
	// unregister; the Reconn client keeps retrying through the list, so the
	// session continues as soon as the name frees up.
	waitDeadline := time.Now().Add(5 * time.Second)
	for {
		if err := cli.Send(ping("c1", "ua", 2)); err == nil {
			break
		}
		if time.Now().After(waitDeadline) {
			t.Fatal("client never resumed sending after failover")
		}
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case <-uaInbox:
	case <-time.After(5 * time.Second):
		t.Fatal("post-failover envelope never reached the ua")
	}
	exchange(3)
	if cli.Addr() != srvB.Addr() {
		t.Fatalf("client on %s after failover, want the standby %s", cli.Addr(), srvB.Addr())
	}
	if cli.Stats().Reconnects < 1 {
		t.Fatalf("stats = %+v, want at least one reconnect", cli.Stats())
	}
}

// TestReconnectPropagatesTraceContext: a traced negotiation survives its
// transport dying mid-session. Every send attempt — delivered, refused while
// disconnected, or lost in flight when the primary dropped — is one child
// span of the same session trace, ended exactly once; after the Reconn
// client resumes on the standby, envelopes still carry the original trace id
// (so /trace stitches the session into one tree across the failover) under a
// fresh span id (a retry is a new attempt, not a replay of the old span).
func TestReconnectPropagatesTraceContext(t *testing.T) {
	tr := trace.Enable("bus-test", 256)
	defer trace.Disable()

	inner, err := NewInProc(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	srvA, err := ListenAndServe("127.0.0.1:0", inner)
	if err != nil {
		t.Fatal(err)
	}
	srvB, err := ListenAndServe("127.0.0.1:0", inner)
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()
	uaInbox, err := inner.Register("ua", 16)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := DialReconnecting([]string{srvA.Addr(), srvB.Addr()}, "c1", ReconnConfig{
		Redial: 20 * time.Millisecond,
		GiveUp: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	root := trace.Root("session.negotiate")
	root.SetSession("s")
	ctx := root.Context()

	attempts := 0
	sendTraced := func(round int) error {
		attempts++
		sp := trace.Child(ctx, "bus.send")
		sp.SetAgent("c1")
		env := ping("c1", "ua", round)
		env.TraceID, env.SpanID = sp.Context().Trace, sp.Context().Span
		err := cli.Send(env)
		sp.End() // ended on failure too: a refused send must not leak its span
		return err
	}
	recv := func(why string) message.Envelope {
		t.Helper()
		select {
		case env := <-uaInbox:
			return env
		case <-time.After(5 * time.Second):
			t.Fatalf("%s: envelope never reached the ua", why)
			return message.Envelope{}
		}
	}

	if err := sendTraced(1); err != nil {
		t.Fatal(err)
	}
	env1 := recv("round 1")
	if env1.TraceID != ctx.Trace || env1.SpanID == 0 {
		t.Fatalf("round 1 arrived with trace %x span %x, want trace %x", env1.TraceID, env1.SpanID, ctx.Trace)
	}

	// The primary dies with the next frame in flight: this send races the
	// close, so it is delivered, cut mid-frame, or refused — all three must
	// leave exactly one ended span behind.
	go srvA.Close()
	if sendTraced(2) == nil {
		select {
		case <-uaInbox:
		case <-time.After(200 * time.Millisecond):
			// Accepted by the dying connection but never delivered.
		}
	}

	// Resume on the standby: retry until a send is both accepted and
	// delivered. Refused attempts still record their spans.
	deadline := time.Now().Add(5 * time.Second)
	var env2 message.Envelope
	for {
		if time.Now().After(deadline) {
			t.Fatal("client never resumed traced sends after failover")
		}
		if sendTraced(3) != nil {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		select {
		case env2 = <-uaInbox:
		case <-time.After(500 * time.Millisecond):
			continue // accepted but lost in the failover window; retry
		}
		break
	}
	if env2.TraceID != ctx.Trace {
		t.Fatalf("post-failover envelope carries trace %x, want %x: trace id lost across reconnect", env2.TraceID, ctx.Trace)
	}
	if env2.SpanID == env1.SpanID {
		t.Fatalf("post-failover envelope reused span %x: a retry must be a fresh span", env2.SpanID)
	}
	root.End()

	// Ring accounting: every attempt ended exactly once (attempts + the root;
	// fewer = a leaked span, more = a double record), no span id twice.
	recs := tr.Records(trace.Filter{Trace: fmt.Sprintf("%016x", ctx.Trace)})
	if len(recs) != attempts+1 {
		t.Fatalf("ring holds %d spans for the session trace, want %d (%d sends + root)", len(recs), attempts+1, attempts)
	}
	rootHex := fmt.Sprintf("%016x", ctx.Span)
	seen := make(map[string]bool, len(recs))
	for _, r := range recs {
		if seen[r.Span] {
			t.Fatalf("span %s recorded twice", r.Span)
		}
		seen[r.Span] = true
		if r.Name == "bus.send" && r.Parent != rootHex {
			t.Fatalf("send span %s has parent %s, want the session root %s", r.Span, r.Parent, rootHex)
		}
	}
	if _, dropped := tr.Stats(); dropped != 0 {
		t.Fatalf("trace ring dropped %d spans", dropped)
	}
}

// TestReconnGivesUpWhenNobodyAnswers: a dead list ends the session instead
// of spinning forever — the Inbox closes.
func TestReconnGivesUpWhenNobodyAnswers(t *testing.T) {
	inner, err := NewInProc(Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ListenAndServe("127.0.0.1:0", inner)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := DialReconnecting([]string{srv.Addr()}, "c1", ReconnConfig{
		Redial: 10 * time.Millisecond,
		GiveUp: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	srv.Close()
	inner.Close()
	select {
	case _, ok := <-waitClosed(cli.Inbox()):
		if ok {
			t.Fatal("inbox delivered instead of closing")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("inbox never closed after give-up")
	}
}

// waitClosed drains a channel until it closes, forwarding the closed state.
func waitClosed(in <-chan message.Envelope) <-chan message.Envelope {
	out := make(chan message.Envelope)
	go func() {
		for range in {
		}
		close(out)
	}()
	return out
}

// TestSplitAddrList covers the flag-level dial list parser.
func TestSplitAddrList(t *testing.T) {
	got := SplitAddrList(" a:1, b:2 ,,c:3 ")
	want := []string{"a:1", "b:2", "c:3"}
	if len(got) != len(want) {
		t.Fatalf("SplitAddrList = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SplitAddrList = %v, want %v", got, want)
		}
	}
	if SplitAddrList("") != nil {
		t.Fatal("empty list must parse to nil")
	}
}
