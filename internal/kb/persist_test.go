package kb

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// persistOntology builds a small typed vocabulary.
func persistOntology(t *testing.T) *Ontology {
	t.Helper()
	o := NewOntology()
	for _, step := range []error{
		o.DeclareSort("customer", SortAny),
		o.DeclareConst("c1", "customer"),
		o.DeclareConst("c2", "customer"),
		o.DeclarePred("acceptable", "customer", SortNumber),
		o.DeclarePred("label", "customer", SortString),
	} {
		if step != nil {
			t.Fatal(step)
		}
	}
	return o
}

// persistStore fills a store with one fact of every term kind and both
// truth values.
func persistStore(t *testing.T, ont *Ontology) *Store {
	t.Helper()
	s := NewStore(ont)
	for _, step := range []error{
		s.Assert(A("acceptable", C("c1"), N(0.4)), True),
		s.Assert(A("acceptable", C("c2"), N(0.25)), False),
		s.Assert(A("label", C("c1"), S("industrial")), True),
	} {
		if step != nil {
			t.Fatal(step)
		}
	}
	return s
}

func TestStorePersistenceRoundTrip(t *testing.T) {
	ont := persistOntology(t)
	s := persistStore(t, ont)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadStore(bytes.NewReader(buf.Bytes()), ont)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("loaded %d facts, want %d", got.Len(), s.Len())
	}
	want := s.Facts()
	for i, f := range got.Facts() {
		if !f.Atom.Equal(want[i].Atom) || f.Truth != want[i].Truth {
			t.Fatalf("fact %d: %v, want %v", i, f, want[i])
		}
	}
	if got.TruthOf(A("acceptable", C("c2"), N(0.25))) != False {
		t.Fatal("explicit False did not survive the round trip")
	}
	// The encoding is deterministic: writing the loaded store reproduces
	// the document byte for byte.
	var buf2 bytes.Buffer
	if err := got.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("round trip is not canonical:\n%s\nvs\n%s", buf.String(), buf2.String())
	}
}

func TestStorePersistenceWithoutOntology(t *testing.T) {
	s := NewStore(nil)
	if err := s.Assert(A("p", N(1), S("x")), True); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadStore(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Holds(A("p", N(1), S("x"))) {
		t.Fatal("untyped fact lost")
	}
}

func TestReadStoreValidatesAgainstOntology(t *testing.T) {
	ont := persistOntology(t)
	// A document whose fact names an undeclared constant must fail the
	// load, exactly as a live Assert would.
	rogue := NewStore(nil)
	if err := rogue.Assert(A("acceptable", C("intruder"), N(0.4)), True); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rogue.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadStore(&buf, ont); err == nil {
		t.Fatal("undeclared constant passed ontology validation")
	}
}

func TestReadStoreRejectsDamage(t *testing.T) {
	ont := persistOntology(t)
	var buf bytes.Buffer
	if err := persistStore(t, ont).Save(&buf); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	tests := []struct {
		name string
		doc  string
	}{
		{"truncated", doc[:len(doc)/2]},
		{"not json", "{{{"},
		{"wrong format", strings.Replace(doc, "kb-state-1", "kb-state-9", 1)},
		{"bad truth", strings.Replace(doc, `"truth": "true"`, `"truth": "maybe"`, 1)},
		{"bad term kind", strings.Replace(doc, `"kind": "number"`, `"kind": "vector"`, 1)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ReadStore(strings.NewReader(tt.doc), ont)
			if err == nil {
				t.Fatal("damaged document loaded without error")
			}
			if tt.name != "truncated" && tt.name != "not json" {
				return
			}
			if !errors.Is(err, ErrBadDocument) {
				t.Fatalf("error = %v, want ErrBadDocument", err)
			}
		})
	}
}

func TestSaveRefusesVariables(t *testing.T) {
	// Stores only hold ground facts, but a hand-built fact map must not
	// serialise a variable either.
	s := NewStore(nil)
	s.facts["forced"] = Fact{Atom: A("p", V("X")), Truth: True}
	var buf bytes.Buffer
	if err := s.Save(&buf); !errors.Is(err, ErrNotGround) {
		t.Fatalf("error = %v, want ErrNotGround", err)
	}
}
