package core

import (
	"fmt"
	"time"

	agentrt "loadbalance/internal/agent"
	"loadbalance/internal/bus"
	"loadbalance/internal/customeragent"
	"loadbalance/internal/protocol"
	"loadbalance/internal/utilityagent"
)

// Result is the outcome of one full negotiation run.
type Result struct {
	utilityagent.Result
	// Bus holds the transport counters (messages, drops).
	Bus bus.Stats
	// FinalBids maps each non-silent customer to its last cut-down bid.
	FinalBids map[string]float64
	// Elapsed is the wall time of the run.
	Elapsed time.Duration
	// AgentErrors collects handler errors from every runtime (empty on a
	// clean run; lossy runs may legitimately record stale-bid errors).
	AgentErrors []error
}

// Run executes a scenario to completion: it builds the bus, starts every
// Customer Agent and the Utility Agent, waits for the negotiation result and
// tears everything down.
func Run(s Scenario) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	timeout := s.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}

	b, err := bus.NewInProc(bus.Config{DropRate: s.DropRate, Seed: s.Seed})
	if err != nil {
		return nil, err
	}
	defer b.Close()

	start := time.Now() //gridlint:allow walltime(wall-duration measurement for Result.Elapsed; never feeds negotiated state)

	// Customer Agents first so the UA's opening broadcast reaches everyone.
	var runtimes []*agentrt.Runtime
	defer func() {
		for _, rt := range runtimes {
			rt.Stop()
		}
	}()
	cas := make(map[string]*customeragent.Agent, len(s.Customers))
	inboxSize := 4 * maxInt(len(s.Customers), 16)
	for _, spec := range s.Customers {
		var handler agentrt.Handler
		if spec.Silent {
			handler = agentrt.HandlerFuncs{} // drains its inbox, never answers
		} else {
			ca, err := customeragent.New(spec.Name, spec.Prefs, spec.Strategy)
			if err != nil {
				return nil, fmt.Errorf("core: customer %q: %w", spec.Name, err)
			}
			cas[spec.Name] = ca
			handler = ca
		}
		rt, err := agentrt.Start(spec.Name, b, handler, 64)
		if err != nil {
			return nil, fmt.Errorf("core: start %q: %w", spec.Name, err)
		}
		runtimes = append(runtimes, rt)
	}

	ua, err := utilityagent.New(utilityagent.Config{
		Name:         "ua",
		SessionID:    s.SessionID,
		Window:       s.Window,
		NormalUse:    s.NormalUse,
		Loads:        s.Loads(),
		Method:       s.Method,
		LeadTime:     s.LeadTime,
		Params:       s.Params,
		InitialSlope: s.InitialSlope,
		Offer:        s.Offer,
		RFB:          s.RFB,
		RoundTimeout: s.RoundTimeout,
		WarrantRatio: s.Params.AllowedOveruseRatio,
	})
	if err != nil {
		return nil, err
	}
	uaRT, err := agentrt.Start("ua", b, ua, inboxSize)
	if err != nil {
		return nil, err
	}
	runtimes = append(runtimes, uaRT)

	var uaResult utilityagent.Result
	select {
	case uaResult = <-ua.Done():
	case <-time.After(timeout): //gridlint:allow walltime(liveness timeout for a stalled fleet; fires only when the run already failed)
		return nil, fmt.Errorf("%w after %v", ErrTimeout, timeout)
	}

	// Give in-flight awards/session-end messages a moment to land before
	// tearing the runtimes down, so FinalBids and awards are consistent.
	drainDeadline := time.Now().Add(200 * time.Millisecond) //gridlint:allow walltime(bounded message-drain deadline; liveness only, awards are already decided)
	for time.Now().Before(drainDeadline) {                  //gridlint:allow walltime(bounded message-drain deadline; liveness only, awards are already decided)
		if allAwarded(cas, s, uaResult) {
			break
		}
		time.Sleep(time.Millisecond)
	}

	res := &Result{
		Result:    uaResult,
		FinalBids: make(map[string]float64, len(cas)),
		Elapsed:   time.Since(start), //gridlint:allow walltime(wall-duration measurement for Result.Elapsed; never feeds negotiated state)
	}
	for name, ca := range cas {
		res.FinalBids[name] = ca.LastBid(s.SessionID)
	}
	for _, rt := range runtimes {
		res.AgentErrors = append(res.AgentErrors, rt.Errors()...)
	}
	res.Bus = b.Stats()
	return res, nil
}

// allAwarded reports whether every awarded customer has seen its award.
func allAwarded(cas map[string]*customeragent.Agent, s Scenario, r utilityagent.Result) bool {
	for _, aw := range r.Awards {
		ca, ok := cas[aw.Customer]
		if !ok {
			continue
		}
		if _, got := ca.AwardFor(s.SessionID); !got {
			return false
		}
	}
	return true
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// BidsOf extracts one customer's bid per round from a reward-table history —
// the Figures 8-9 trace. Rounds without a recorded bid repeat the previous
// commitment (a lost or stale bid leaves the model unchanged).
func BidsOf(history []protocol.RoundRecord, customer string) []float64 {
	out := make([]float64, 0, len(history))
	last := 0.0
	for _, rec := range history {
		if b, ok := rec.Bids[customer]; ok {
			last = b
		}
		out = append(out, last)
	}
	return out
}
