package bus

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"loadbalance/internal/health"
	"loadbalance/internal/message"
)

// The TCP transport bridges remote agents onto a local Bus, so the rest of
// the system cannot tell remote agents from local ones. v2 connections speak
// the binary frame protocol of wire.go; v1 connections (newline-delimited
// JSON) are detected by their first byte and served by the legacy codec for
// the connection's lifetime. A connection opens with a hello naming the
// remote agent; the server answers with a hello-ack (v2) or, on rejection, a
// terminal error frame, then both sides exchange message envelopes.

// helloFrame is the first v1 frame a client sends.
type helloFrame struct {
	Hello string `json:"hello"`
}

// frame is the v1 union wire frame: exactly one field is set.
type frame struct {
	Hello    string            `json:"hello,omitempty"`
	Error    string            `json:"error,omitempty"`
	Envelope *message.Envelope `json:"envelope,omitempty"`
}

// ServerConfig tunes the TCP server's overload behaviour.
type ServerConfig struct {
	// WriteTimeout bounds each frame write to a client, so one stalled peer
	// cannot wedge its writer goroutine (default 10s).
	WriteTimeout time.Duration
	// OutboundQueue is the per-connection bounded queue of encoded frames
	// awaiting transmission; envelopes arriving at a full queue are shed and
	// counted in WireStats.Dropped (default 256).
	OutboundQueue int
	// MaxFrame bounds one inbound frame in bytes (default DefaultMaxFrame).
	MaxFrame int
}

// withDefaults fills unset fields.
func (c ServerConfig) withDefaults() ServerConfig {
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.OutboundQueue <= 0 {
		c.OutboundQueue = 256
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	return c
}

// Server accepts TCP connections and bridges each remote agent onto the
// wrapped bus.
type Server struct {
	bus Bus
	ln  net.Listener
	cfg ServerConfig

	mu     sync.Mutex
	conns  map[string]net.Conn
	closed bool
	wg     sync.WaitGroup

	stats wireCounters
}

// ListenAndServe starts a server on addr with default tuning, bridging onto
// bus. Callers must Close the returned server.
func ListenAndServe(addr string, b Bus) (*Server, error) {
	return ListenAndServeConfig(addr, b, ServerConfig{})
}

// ListenAndServeConfig starts a server with explicit overload tuning.
func ListenAndServeConfig(addr string, b Bus, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("bus: listen %s: %w", addr, err)
	}
	s := &Server{bus: b, ln: ln, cfg: cfg.withDefaults(), conns: make(map[string]net.Conn)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// WireStats returns a snapshot of the server's transport counters.
func (s *Server) WireStats() WireStats { return s.stats.snapshot() }

// acceptLoop accepts connections until the listener closes.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// handle serves one client connection for its lifetime, sniffing the
// protocol version from the first byte.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()

	r := bufio.NewReader(conn)
	first, err := r.Peek(1)
	if err != nil {
		return
	}
	if first[0] == '{' {
		s.stats.legacyConn.Add(1)
		s.handleLegacy(conn, r)
		return
	}
	s.handleBinary(conn, r)
}

// writeRaw writes buf to conn under the server's write deadline.
func (s *Server) writeRaw(conn net.Conn, buf []byte) error {
	_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	_, err := conn.Write(buf)
	_ = conn.SetWriteDeadline(time.Time{})
	if err == nil {
		s.stats.framesOut.Add(1)
		s.stats.bytesOut.Add(uint64(len(buf)))
	}
	return err
}

// rejectBinary sends a terminal error frame and gives up on the connection.
func (s *Server) rejectBinary(conn net.Conn, reason string) {
	s.stats.rejected.Add(1)
	_ = s.writeRaw(conn, appendFrame(nil, frameError, []byte(reason)))
}

// handleBinary speaks wire protocol v2 on the connection.
func (s *Server) handleBinary(conn net.Conn, r *bufio.Reader) {
	// Preamble: magic + the client's highest supported version. The server
	// answers with the negotiated version (currently always 2) in the ack.
	var preamble [2]byte
	if _, err := io.ReadFull(r, preamble[:]); err != nil {
		return
	}
	if preamble[0] != wireMagic {
		return // not this protocol; nothing safe to answer
	}
	if preamble[1] < WireVersion {
		s.rejectBinary(conn, fmt.Sprintf("unsupported protocol version %d (server speaks %d)", preamble[1], WireVersion))
		return
	}
	kind, payload, n, err := readFrame(r, s.cfg.MaxFrame)
	if err != nil || kind != frameHello {
		s.rejectBinary(conn, "expected hello frame")
		return
	}
	s.stats.framesIn.Add(1)
	s.stats.bytesIn.Add(uint64(n))
	name := string(payload)

	inbox, err := s.bus.Register(name, 0)
	if err != nil {
		// A duplicate or invalid hello is answered, not silently dropped:
		// the dialer learns its fate instead of hanging on the first read.
		s.rejectBinary(conn, err.Error())
		return
	}
	s.stats.hellos.Add(1)
	if err := s.writeRaw(conn, appendFrame(nil, frameHelloAck, []byte{WireVersion})); err != nil {
		s.bus.Unregister(name)
		return
	}

	if !s.track(name, conn) {
		s.bus.Unregister(name)
		return
	}
	defer s.untrack(name)

	// Outbound pipeline: the forwarder moves bus inbox envelopes into a
	// bounded queue of encoded frames (shedding on overflow), the writer
	// drains the queue onto the wire under a per-frame deadline. Unregister
	// closes the inbox, which unwinds both in order.
	out := make(chan []byte, s.cfg.OutboundQueue)
	writerDone := make(chan struct{})
	forwarderDone := make(chan struct{})
	go func() {
		defer close(forwarderDone)
		defer close(out)
		for env := range inbox {
			// Shedding at a full queue must skip the encode too — overload
			// is the one time shedding needs to be cheap. The reader may
			// also enqueue a terminal error frame, so the capacity check is
			// a fast path, not a guarantee; the non-blocking send decides.
			if len(out) == cap(out) {
				s.stats.dropped.Add(1)
				continue
			}
			select {
			case out <- EncodeEnvelopeFrame(nil, env):
			default:
				s.stats.dropped.Add(1)
			}
		}
	}()
	go func() {
		defer close(writerDone)
		for buf := range out {
			if err := s.writeRaw(conn, buf); err != nil {
				// A dead or stalled peer: cut the connection so the reader
				// unblocks, then keep draining so the forwarder never does.
				_ = conn.Close()
				for range out {
					s.stats.dropped.Add(1)
				}
				return
			}
		}
	}()
	defer func() {
		// Single teardown path: unregistering closes the inbox, the
		// forwarder closes the queue, the writer drains and exits.
		s.bus.Unregister(name)
		<-forwarderDone
		<-writerDone
	}()

	// Reader: forward connection envelopes to the bus.
	for {
		kind, payload, n, err := readFrame(r, s.cfg.MaxFrame)
		if err != nil {
			if err == ErrFrameTooLarge || (err != io.EOF && err != io.ErrUnexpectedEOF) {
				// The writer goroutine owns the connection now; enqueue the
				// terminal error so it cannot interleave with an in-flight
				// envelope frame. The deferred teardown closes the queue
				// behind it.
				s.stats.protoErrs.Add(1)
				select {
				case out <- appendFrame(nil, frameError, []byte(fmt.Sprintf("closing: %v", err))):
				default:
				}
			}
			return
		}
		s.stats.framesIn.Add(1)
		s.stats.bytesIn.Add(uint64(n))
		if kind != frameEnvelope {
			continue // unknown frame kinds are ignored for forward compatibility
		}
		env, err := message.UnmarshalBinary(payload)
		if err != nil {
			s.stats.malformed.Add(1)
			continue // skip malformed frames rather than killing the session
		}
		env.From = name // trust boundary: the connection owns its identity
		if _, err := env.Decode(); err != nil {
			s.stats.malformed.Add(1)
			continue
		}
		_ = s.bus.Send(env) // delivery errors are the protocol layer's concern
	}
}

// handleLegacy speaks the v1 newline-JSON protocol on the connection.
func (s *Server) handleLegacy(conn net.Conn, r *bufio.Reader) {
	line, err := r.ReadBytes('\n')
	if err != nil {
		return
	}
	var hello helloFrame
	if err := json.Unmarshal(line, &hello); err != nil || hello.Hello == "" {
		return
	}
	name := hello.Hello

	inbox, err := s.bus.Register(name, 0)
	if err != nil {
		s.stats.rejected.Add(1)
		if buf, merr := json.Marshal(frame{Error: err.Error()}); merr == nil {
			_ = s.writeRaw(conn, append(buf, '\n'))
		}
		return
	}
	if !s.track(name, conn) {
		s.bus.Unregister(name)
		return
	}
	defer s.untrack(name)

	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for env := range inbox {
			e := env
			buf, err := json.Marshal(frame{Envelope: &e})
			if err != nil {
				continue
			}
			if err := s.writeRaw(conn, append(buf, '\n')); err != nil {
				// Cut the connection so the reader unblocks, then drain the
				// inbox so Unregister's close is all that remains.
				_ = conn.Close()
				for range inbox {
					s.stats.dropped.Add(1)
				}
				return
			}
		}
	}()
	defer func() {
		// Unregister closes the inbox, which stops the writer; one site, so
		// the old double-Unregister path is gone.
		s.bus.Unregister(name)
		<-writerDone
	}()

	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			return
		}
		s.stats.framesIn.Add(1)
		s.stats.bytesIn.Add(uint64(len(line)))
		var f frame
		if err := json.Unmarshal(line, &f); err != nil || f.Envelope == nil {
			s.stats.malformed.Add(1)
			continue // skip malformed frames rather than killing the session
		}
		env := *f.Envelope
		env.From = name // trust boundary: the connection owns its identity
		if _, err := env.Decode(); err != nil {
			s.stats.malformed.Add(1)
			continue
		}
		_ = s.bus.Send(env)
	}
}

// track records a live connection; it reports false when the server is
// already closing.
func (s *Server) track(name string, conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[name] = conn
	return true
}

// untrack forgets a connection.
func (s *Server) untrack(name string) {
	s.mu.Lock()
	delete(s.conns, name)
	s.mu.Unlock()
}

// Close stops accepting, drops all connections and waits for handlers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for _, c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	_ = s.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
}

// ClientConfig tunes a client connection.
type ClientConfig struct {
	// InboxSize buffers inbound envelopes (default 64). Envelopes arriving
	// at a full inbox are dropped and counted, matching InProc overload
	// semantics.
	InboxSize int
	// WriteTimeout bounds each Send's network write (default 10s).
	WriteTimeout time.Duration
	// HelloTimeout bounds the dial handshake round trip (default 5s).
	HelloTimeout time.Duration
	// MaxFrame bounds one inbound frame in bytes (default DefaultMaxFrame).
	MaxFrame int
}

// withDefaults fills unset fields.
func (c ClientConfig) withDefaults() ClientConfig {
	if c.InboxSize <= 0 {
		c.InboxSize = 64
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.HelloTimeout <= 0 {
		c.HelloTimeout = 5 * time.Second
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	return c
}

// ClientStats counts a client connection's traffic.
type ClientStats struct {
	Received uint64 // envelopes decoded off the wire
	Dropped  uint64 // envelopes discarded at a full inbox
	Sent     uint64 // envelopes written to the wire
}

// Client is a remote agent's connection to a Server. It speaks wire
// protocol v2.
type Client struct {
	name    string
	conn    net.Conn
	cfg     ClientConfig
	version int
	reader  *bufio.Reader

	inbox chan message.Envelope
	done  chan struct{}

	mu     sync.Mutex // guards closed
	wmu    sync.Mutex // serialises connection writes
	closed bool

	statReceived, statDropped, statSent atomic.Uint64
	dropOnce                            sync.Once

	errMu   sync.Mutex
	termErr error
}

// Dial connects to a server with default tuning and identifies as the named
// agent. It returns once the server has acknowledged the hello, so a
// rejected name (already registered, say) fails here instead of stalling
// the first read.
func Dial(addr, name string) (*Client, error) {
	return DialConfig(addr, name, ClientConfig{})
}

// DialConfig connects with explicit tuning.
func DialConfig(addr, name string, cfg ClientConfig) (*Client, error) {
	if name == "" {
		return nil, fmt.Errorf("%w: empty name", ErrUnknownAgent)
	}
	cfg = cfg.withDefaults()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("bus: dial %s: %w", addr, err)
	}
	c := &Client{
		name:  name,
		conn:  conn,
		cfg:   cfg,
		inbox: make(chan message.Envelope, cfg.InboxSize),
		done:  make(chan struct{}),
	}
	if err := c.handshake(); err != nil {
		_ = conn.Close()
		return nil, err
	}
	go c.readLoop()
	return c, nil
}

// handshake sends the preamble and hello, then waits for the ack.
func (c *Client) handshake() error {
	deadline := time.Now().Add(c.cfg.HelloTimeout)
	_ = c.conn.SetDeadline(deadline)
	defer c.conn.SetDeadline(time.Time{})

	buf := appendFrame([]byte{wireMagic, WireVersion}, frameHello, []byte(c.name))
	if _, err := c.conn.Write(buf); err != nil {
		return fmt.Errorf("bus: hello: %w", err)
	}
	r := bufio.NewReader(c.conn)
	kind, payload, _, err := readFrame(r, c.cfg.MaxFrame)
	if err != nil {
		return fmt.Errorf("%w: no hello ack: %v", ErrBadHandshake, err)
	}
	switch kind {
	case frameHelloAck:
		if len(payload) < 1 {
			return fmt.Errorf("%w: empty hello ack", ErrBadHandshake)
		}
		c.version = int(payload[0])
		if c.version != WireVersion {
			return fmt.Errorf("%w: server negotiated version %d, client speaks %d", ErrBadHandshake, c.version, WireVersion)
		}
		c.reader = r
		return nil
	case frameError:
		return fmt.Errorf("%w: %s", ErrRemote, payload)
	default:
		return fmt.Errorf("%w: unexpected frame kind %d", ErrBadHandshake, kind)
	}
}

// readLoop pumps inbound frames into the inbox until the connection dies.
func (c *Client) readLoop() {
	defer close(c.inbox)
	defer close(c.done)
	r := c.reader
	for {
		kind, payload, _, err := readFrame(r, c.cfg.MaxFrame)
		if err != nil {
			return
		}
		switch kind {
		case frameEnvelope:
			env, err := message.UnmarshalBinary(payload)
			if err != nil {
				continue
			}
			select {
			case c.inbox <- env:
				c.statReceived.Add(1)
			default:
				// Inbox full: shed, matching InProc semantics under
				// overload — but never silently.
				c.statDropped.Add(1)
				c.dropOnce.Do(func() {
					health.Log(health.Warn, "bus", "client inbox full, dropping inbound envelopes (counted in Stats)",
						health.Str("client", c.name))
				})
			}
		case frameError:
			c.setTermErr(fmt.Errorf("%w: %s", ErrRemote, payload))
			return
		}
	}
}

// Inbox returns the channel of inbound envelopes. It closes when the
// connection ends.
func (c *Client) Inbox() <-chan message.Envelope { return c.inbox }

// Version returns the negotiated wire protocol version.
func (c *Client) Version() int { return c.version }

// RemoteAddr returns the server address this client is connected to.
func (c *Client) RemoteAddr() string { return c.conn.RemoteAddr().String() }

// Stats returns a snapshot of the connection's traffic counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Received: c.statReceived.Load(),
		Dropped:  c.statDropped.Load(),
		Sent:     c.statSent.Load(),
	}
}

// Err returns the terminal error frame received from the server, if any.
func (c *Client) Err() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.termErr
}

// setTermErr records the first terminal error.
func (c *Client) setTermErr(err error) {
	c.errMu.Lock()
	if c.termErr == nil {
		c.termErr = err
	}
	c.errMu.Unlock()
}

// Send transmits an envelope. From is forced to the client's identity. The
// envelope is encoded outside any lock and written under a deadline, so a
// stalled peer delays Send by at most WriteTimeout and never blocks Close.
func (c *Client) Send(env message.Envelope) error {
	env.From = c.name
	buf := EncodeEnvelopeFrame(nil, env)

	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}

	c.wmu.Lock()
	defer c.wmu.Unlock()
	_ = c.conn.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout))
	_, err := c.conn.Write(buf) //gridlint:allow lockedsend(wmu is a dedicated per-connection writer gate, not a state lock; encode happens outside it and Close aborts in-flight writes)
	_ = c.conn.SetWriteDeadline(time.Time{})
	if err != nil {
		return fmt.Errorf("bus: send: %w", err)
	}
	c.statSent.Add(1)
	return nil
}

// Close tears down the connection and waits for the read loop to exit. It
// does not wait on the write path: closing the connection aborts any
// in-flight write.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	_ = c.conn.Close()
	<-c.done
}
