// Command benchrec runs the repo's tracked benchmark bodies
// (internal/benchrun) and appends the results to a machine-readable perf
// trajectory file, BENCH_gridd.json (schema gridd-bench/v1). CI runs it on
// every push: the file is uploaded as an artifact and the run fails if a
// tracked floor regresses against the committed baseline.
//
// Record a run (appends to the trajectory):
//
//	benchrec -out BENCH_gridd.json
//
// Record the committed baseline (the run future checks compare against):
//
//	benchrec -out BENCH_gridd.json -baseline -label "PR 6 seed"
//
// Gate (CI): record a run, then fail on >10% regression vs the baseline or
// >5% tracing overhead:
//
//	benchrec -out BENCH_gridd.json -check
//
// Because CI machines differ in absolute speed from the machine that
// recorded the baseline, the baseline comparison is normalized: the median
// new/baseline ratio across all shared benchmarks estimates the machine
// speed factor, and only benchmarks slower than median * (1 + max-regress)
// fail — a floor that drifted relative to the rest of the suite, not a
// slower runner. The tracing-overhead gate needs no normalization: both
// sides of each traced/untraced pair run in the same invocation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"loadbalance/internal/benchrun"
)

// fileSchema identifies the trajectory file format.
const fileSchema = "gridd-bench/v1"

// File is the BENCH_gridd.json document.
type File struct {
	Schema string `json:"schema"`
	Runs   []Run  `json:"runs"`
}

// Run is one benchrec invocation's results.
type Run struct {
	Date     string                     `json:"date"` // RFC3339
	Label    string                     `json:"label,omitempty"`
	Baseline bool                       `json:"baseline,omitempty"`
	Go       string                     `json:"go"`
	OS       string                     `json:"os"`
	Arch     string                     `json:"arch"`
	CPUs     int                        `json:"cpus"`
	Results  map[string]benchrun.Result `json:"results"`
}

// tracedPairs maps each overhead-gated benchmark to its untraced floor.
// These pairs hold the tracing tentpole to its budget: enabling the
// subsystem must not move the hot paths.
var tracedPairs = map[string]string{
	"journal_append_traced":   "journal_append",
	"wire_codec_table_traced": "wire_codec_table",
	"wire_codec_bid_traced":   "wire_codec_bid",
	"obs_workload_streamed":   "obs_workload",
	"tsdb_workload_scraped":   "tsdb_workload",
}

// absoluteBudgets are machine-independent-enough ceilings in ns/op on paths
// whose whole contract is "cheap enough to leave on everywhere". Unlike the
// baseline comparison these are not speed-normalized: a gated-off log call
// is one atomic load plus a compare, and if it costs more than this on any
// plausible runner the implementation regressed structurally (interface
// boxing, an escaped field slice), not proportionally.
var absoluteBudgets = map[string]float64{
	"log_event_disabled": 25,
}

func main() {
	var (
		out       = flag.String("out", "BENCH_gridd.json", "trajectory file to append this run to")
		rounds    = flag.Int("rounds", 3, "testing.Benchmark rounds per body; the fastest is recorded")
		label     = flag.String("label", "", "free-form label stored with the run")
		baseline  = flag.Bool("baseline", false, "mark this run as the baseline future -check runs compare against")
		check     = flag.Bool("check", false, "after recording, fail on regression vs the newest baseline run or on tracing overhead")
		maxReg    = flag.Float64("max-regress", 10, "percent a floor may exceed the speed-normalized baseline before -check fails")
		maxTraced = flag.Float64("max-traced-overhead", 5, "percent a _traced floor may exceed its untraced pair before -check fails")
		only      = flag.String("bench", "", "comma-separated benchmark names to run (default: all)")
		validate  = flag.Bool("validate", false, "parse -out, print a summary and exit without benchmarking")
	)
	flag.Parse()
	if err := run(*out, *rounds, *label, *baseline, *check, *maxReg, *maxTraced, *only, *validate); err != nil {
		fmt.Fprintln(os.Stderr, "benchrec:", err)
		os.Exit(1)
	}
}

func run(out string, rounds int, label string, baseline, check bool, maxReg, maxTraced float64, only string, validate bool) error {
	f, err := load(out)
	if err != nil {
		return err
	}
	if validate {
		fmt.Printf("benchrec: %s: schema %s, %d runs, %d baseline(s)\n", out, f.Schema, len(f.Runs), countBaselines(f))
		return nil
	}

	defs := benchrun.Defs()
	if only != "" {
		var picked []benchrun.Def
		for _, name := range strings.Split(only, ",") {
			d, err := benchrun.Lookup(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			picked = append(picked, d)
		}
		defs = picked
	}

	rec := Run{
		Date:     time.Now().UTC().Format(time.RFC3339),
		Label:    label,
		Baseline: baseline,
		Go:       runtime.Version(),
		OS:       runtime.GOOS,
		Arch:     runtime.GOARCH,
		CPUs:     runtime.NumCPU(),
		Results:  make(map[string]benchrun.Result, len(defs)),
	}
	report := func(name string, r benchrun.Result) {
		rec.Results[name] = r
		fmt.Printf("%-28s %12.1f ns/op %6d B/op %4d allocs/op\n", name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	for _, d := range defs {
		if _, done := rec.Results[d.Name]; done {
			continue
		}
		// Overhead pairs run with interleaved rounds so both sides of the
		// comparison see the same machine noise.
		if plainName, isTraced := tracedPairs[d.Name]; isTraced {
			if plain, err := benchrun.Lookup(plainName); err == nil {
				if _, havePlain := rec.Results[plainName]; havePlain || hasDef(defs, plainName) {
					rp, rt := benchrun.RunPair(plain, d, rounds)
					report(plainName, rp)
					report(d.Name, rt)
					continue
				}
			}
		}
		if tracedName := pairedTraced(d.Name); tracedName != "" && hasDef(defs, tracedName) {
			if traced, err := benchrun.Lookup(tracedName); err == nil {
				rp, rt := benchrun.RunPair(d, traced, rounds)
				report(d.Name, rp)
				report(tracedName, rt)
				continue
			}
		}
		report(d.Name, benchrun.Run(d, rounds))
	}
	f.Runs = append(f.Runs, rec)
	if err := save(out, f); err != nil {
		return err
	}
	fmt.Printf("benchrec: recorded run %d in %s\n", len(f.Runs), out)

	if !check {
		return nil
	}
	var failures []string
	failures = append(failures, checkAbsoluteBudgets(rec)...)
	failures = append(failures, checkTracedOverhead(rec, maxTraced)...)
	if base := newestBaseline(f, len(f.Runs)-1); base != nil {
		failures = append(failures, checkBaseline(rec, *base, maxReg)...)
	} else {
		fmt.Println("benchrec: no baseline run in file; skipping regression comparison")
	}
	if len(failures) > 0 {
		return fmt.Errorf("regression gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Println("benchrec: regression gate passed")
	return nil
}

// hasDef reports whether the selected def list includes name.
func hasDef(defs []benchrun.Def, name string) bool {
	for _, d := range defs {
		if d.Name == name {
			return true
		}
	}
	return false
}

// pairedTraced returns the traced twin gated against this floor, if any.
func pairedTraced(plain string) string {
	for traced, p := range tracedPairs {
		if p == plain {
			return traced
		}
	}
	return ""
}

// checkAbsoluteBudgets gates the floors that carry a fixed ns/op ceiling.
func checkAbsoluteBudgets(rec Run) []string {
	var failures []string
	for name, budget := range absoluteBudgets {
		r, ok := rec.Results[name]
		if !ok {
			continue
		}
		fmt.Printf("benchrec: %s: %.1f ns/op (absolute budget %.0f ns/op)\n", name, r.NsPerOp, budget)
		if r.NsPerOp > budget {
			failures = append(failures, fmt.Sprintf("%s is %.1f ns/op, over its absolute budget of %.0f ns/op", name, r.NsPerOp, budget))
		}
	}
	return failures
}

// checkTracedOverhead gates each traced/untraced pair measured in this run,
// preferring the same-round overhead statistic RunPair computes (it cancels
// machine noise drifting between rounds) over the ratio of recorded floors.
func checkTracedOverhead(rec Run, maxPct float64) []string {
	var failures []string
	for traced, plain := range tracedPairs {
		t, okT := rec.Results[traced]
		p, okP := rec.Results[plain]
		if !okT || !okP || p.NsPerOp <= 0 {
			continue
		}
		over := (t.NsPerOp/p.NsPerOp - 1) * 100
		if t.PairOverheadPct != nil {
			over = *t.PairOverheadPct
		}
		fmt.Printf("benchrec: %s overhead vs %s: %+.1f%% (budget %.0f%%)\n", traced, plain, over, maxPct)
		if over > maxPct {
			failures = append(failures, fmt.Sprintf("%s is %.1f%% over %s (budget %.0f%%)", traced, over, plain, maxPct))
		}
	}
	return failures
}

// floors folds each traced twin into its untraced floor: the twin runs the
// identical workload, so min(plain, traced) samples the same floor twice and
// halves the invocation-to-invocation noise on I/O-bound benches. Traced
// names drop out here — the overhead gate covers them.
func floors(rec Run) map[string]float64 {
	m := make(map[string]float64, len(rec.Results))
	for name, r := range rec.Results {
		if _, isTraced := tracedPairs[name]; isTraced {
			continue
		}
		m[name] = r.NsPerOp
	}
	for traced, plain := range tracedPairs {
		t, okT := rec.Results[traced]
		if f, okP := m[plain]; okT && okP && t.NsPerOp > 0 && t.NsPerOp < f {
			m[plain] = t.NsPerOp
		}
	}
	return m
}

// checkBaseline gates this run against the baseline after normalizing out
// the machine speed difference (median ratio across shared benchmarks).
func checkBaseline(rec, base Run, maxPct float64) []string {
	recF, baseF := floors(rec), floors(base)
	var ratios []float64
	type pair struct {
		name  string
		ratio float64
	}
	var pairs []pair
	for name, b := range baseF {
		n, ok := recF[name]
		if !ok || b <= 0 || n <= 0 {
			continue
		}
		r := n / b
		ratios = append(ratios, r) //gridlint:allow floatmaprange(ratios are sorted before the median is taken, pairs are per-name floors; order-independent)
		pairs = append(pairs, pair{name, r})
	}
	if len(ratios) == 0 {
		return nil
	}
	sort.Float64s(ratios)
	speed := ratios[len(ratios)/2] // median = this machine vs the baseline machine
	fmt.Printf("benchrec: machine speed factor vs baseline (%s): %.2fx\n", base.Date, speed)
	var failures []string
	for _, p := range pairs {
		rel := (p.ratio/speed - 1) * 100
		if rel > maxPct {
			failures = append(failures, fmt.Sprintf("%s regressed %.1f%% vs baseline after speed normalization (budget %.0f%%)", p.name, rel, maxPct))
		}
	}
	return failures
}

// newestBaseline finds the latest run marked baseline among runs[0:limit].
func newestBaseline(f *File, limit int) *Run {
	for i := limit - 1; i >= 0; i-- {
		if f.Runs[i].Baseline {
			return &f.Runs[i]
		}
	}
	return nil
}

func countBaselines(f *File) int {
	n := 0
	for _, r := range f.Runs {
		if r.Baseline {
			n++
		}
	}
	return n
}

// load parses the trajectory file, returning an empty document if it does
// not exist yet.
func load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &File{Schema: fileSchema}, nil
	}
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != fileSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, f.Schema, fileSchema)
	}
	return &f, nil
}

// save writes the trajectory atomically (temp file + rename).
func save(path string, f *File) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".benchrec-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	return os.Rename(tmpName, path)
}
