// Fixture: seeded *rand.Rand instances threaded from config are the
// sanctioned pattern; constructors are exempt.
package clean

import "math/rand"

type scenario struct {
	rng *rand.Rand
}

func newScenario(seed int64) *scenario {
	return &scenario{rng: rand.New(rand.NewSource(seed))}
}

func (s *scenario) draw() float64 {
	return s.rng.Float64()
}

func (s *scenario) intn(n int) int {
	return s.rng.Intn(n)
}

func derived(parent *rand.Rand) *rand.Rand {
	return rand.New(rand.NewSource(parent.Int63()))
}
