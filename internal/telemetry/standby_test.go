package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"path/filepath"
	"testing"

	"loadbalance/internal/store"
)

// standbyCfg is the seeded spiked scenario the standby tests replicate.
func standbyCfg(t *testing.T, n, shards, ticks int) LiveConfig {
	t.Helper()
	s, err := ElasticFleetScenario(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	return LiveConfig{
		Scenario:       s,
		Shards:         shards,
		TicksPerWindow: 8,
		Jitter:         0.01,
		Seed:           7,
		ShardEvents: map[int][]Event{
			1: {{StartTick: ticks / 3, EndTick: ticks + 1, Factor: 2.5}},
		},
	}
}

// feedStandby pumps everything currently flushed in the primary's journal
// into the standby through the replication apply path.
func feedStandby(t *testing.T, tl *store.Tailer, sb *StandbyEngine) {
	t.Helper()
	for {
		batch, err := tl.Next(0)
		if err != nil {
			t.Fatalf("tail: %v", err)
		}
		if batch.Count == 0 {
			return
		}
		if _, _, err := sb.ApplyFrames(batch.FirstSeq, batch.Frames); err != nil {
			t.Fatalf("apply frames at %d: %v", batch.FirstSeq, err)
		}
	}
}

// TestStandbyReplayPromoteByteIdentical is the telemetry-level failover
// guarantee: a standby fed the primary's journal records mid-run, promoted
// after the primary "dies", finishes the run with a grid profile
// byte-identical to an uninterrupted single-node run.
func TestStandbyReplayPromoteByteIdentical(t *testing.T) {
	const (
		n      = 12
		shards = 4
		ticks  = 18
		crash  = 9
	)
	base := t.TempDir()

	// Reference: uninterrupted durable run.
	ref, _, err := OpenDurable(standbyCfg(t, n, shards, ticks), DurableConfig{Dir: filepath.Join(base, "ref")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Run(ticks); err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(ref.Profile())
	if err != nil {
		t.Fatal(err)
	}
	if ref.Renegotiations() == 0 {
		t.Fatal("reference run never renegotiated; the spike must force at least one")
	}
	if err := ref.Shutdown(); err != nil {
		t.Fatal(err)
	}

	// Primary: same run, streamed to a standby while it ticks, killed at
	// the crash tick (no seal, no shutdown).
	primaryDir := filepath.Join(base, "primary")
	prim, _, err := OpenDurable(standbyCfg(t, n, shards, ticks), DurableConfig{Dir: primaryDir})
	if err != nil {
		t.Fatal(err)
	}
	sb, info, err := OpenStandby(standbyCfg(t, n, shards, ticks), DurableConfig{Dir: filepath.Join(base, "standby")})
	if err != nil {
		t.Fatal(err)
	}
	if info.Recovered {
		t.Fatal("fresh standby reported recovered state")
	}
	tl, err := store.OpenTail(primaryDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()

	for i := 0; i < crash; i++ {
		if _, err := prim.Tick(); err != nil {
			t.Fatal(err)
		}
		feedStandby(t, tl, sb)
	}
	if sb.Tick() != crash {
		t.Fatalf("standby replica at tick %d, want %d", sb.Tick(), crash)
	}
	// Crash the primary: telemetry torn down, journal closed unsealed.
	prim.Stop()
	if err := prim.Store().Close(); err != nil {
		t.Fatal(err)
	}

	// Promote the standby and finish the run.
	eng, pinfo, err := sb.Promote("r0", "primary heartbeat lost")
	if err != nil {
		t.Fatal(err)
	}
	if pinfo.ResumeTick != crash {
		t.Fatalf("promoted engine resumes at tick %d, want %d", pinfo.ResumeTick, crash)
	}
	if _, err := eng.Run(ticks - pinfo.ResumeTick); err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(eng.Profile())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("promoted standby diverged from the uninterrupted run\n got: %s\nwant: %s", got, want)
	}

	// The standby's journal seals the divergence point with a promote record
	// (scan the full journal: the shutdown snapshot hides it from ReadDir's
	// tail view).
	sbTail, err := store.OpenTail(filepath.Join(base, "standby"), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sbTail.Close()
	var promote *store.PromoteInfo
	for {
		batch, err := sbTail.Next(0)
		if err != nil {
			t.Fatal(err)
		}
		if batch.Count == 0 {
			break
		}
		recs, err := store.DecodeFrames(batch.Frames)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if r.Kind == store.KindPromote {
				p, err := store.DecodePromote(r)
				if err != nil {
					t.Fatal(err)
				}
				promote = &p
			}
		}
	}
	rec, err := store.ReadDir(filepath.Join(base, "standby"))
	if err != nil {
		t.Fatal(err)
	}
	if promote == nil {
		t.Fatal("promoted standby journal holds no promote record")
	}
	if promote.Replica != "r0" || promote.FromSeq != pinfo.FromSeq {
		t.Fatalf("promote record = %+v, want replica r0 at seq %d", promote, pinfo.FromSeq)
	}
	if !rec.Sealed {
		t.Fatal("promoted run did not seal its journal on shutdown")
	}
}

// TestStandbyRestartResumesFromLocalJournal: a standby that crashes and
// reopens its own data directory resumes replication from its local prefix
// instead of starting over.
func TestStandbyRestartResumesFromLocalJournal(t *testing.T) {
	const (
		n      = 8
		shards = 2
		ticks  = 12
	)
	base := t.TempDir()
	primaryDir := filepath.Join(base, "primary")
	standbyDir := filepath.Join(base, "standby")

	prim, _, err := OpenDurable(standbyCfg(t, n, shards, ticks), DurableConfig{Dir: primaryDir})
	if err != nil {
		t.Fatal(err)
	}
	sb, _, err := OpenStandby(standbyCfg(t, n, shards, ticks), DurableConfig{Dir: standbyDir})
	if err != nil {
		t.Fatal(err)
	}
	tl, err := store.OpenTail(primaryDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := prim.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	feedStandby(t, tl, sb)
	applied := sb.LastSeq()
	if applied == 0 {
		t.Fatal("standby applied nothing")
	}
	tl.Close()
	if err := sb.Close(); err != nil { // standby crash/restart
		t.Fatal(err)
	}

	sb2, info, err := OpenStandby(standbyCfg(t, n, shards, ticks), DurableConfig{Dir: standbyDir})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Recovered {
		t.Fatal("restarted standby found no local state")
	}
	if sb2.LastSeq() != applied {
		t.Fatalf("restarted standby at seq %d, want %d", sb2.LastSeq(), applied)
	}
	if sb2.Tick() != 5 {
		t.Fatalf("restarted standby replica at tick %d, want 5", sb2.Tick())
	}

	// Resume the stream exactly where the local journal ends.
	tl2, err := store.OpenTail(primaryDir, applied)
	if err != nil {
		t.Fatal(err)
	}
	defer tl2.Close()
	for i := 5; i < 8; i++ {
		if _, err := prim.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	feedStandby(t, tl2, sb2)
	if sb2.Tick() != 8 {
		t.Fatalf("resumed standby at tick %d, want 8", sb2.Tick())
	}
	prim.Stop()
	if err := prim.Store().Close(); err != nil {
		t.Fatal(err)
	}
	if err := sb2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStandbyPromotesBeforeOutcomeByNegotiatingFresh: a standby promoted
// before any negotiated outcome replicated (the primary died during its
// initial negotiation) starts the run itself — and because negotiation is
// deterministic, it converges byte-identical to an uninterrupted run anyway.
func TestStandbyPromotesBeforeOutcomeByNegotiatingFresh(t *testing.T) {
	const (
		n      = 6
		shards = 2
		ticks  = 6
	)
	base := t.TempDir()
	ref, _, err := OpenDurable(standbyCfg(t, n, shards, ticks), DurableConfig{Dir: filepath.Join(base, "ref")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Run(ticks); err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(ref.Profile())
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Shutdown(); err != nil {
		t.Fatal(err)
	}

	sb, _, err := OpenStandby(standbyCfg(t, n, shards, ticks), DurableConfig{Dir: filepath.Join(base, "standby")})
	if err != nil {
		t.Fatal(err)
	}
	eng, pinfo, err := sb.Promote("r0", "primary died before first outcome")
	if err != nil {
		t.Fatal(err)
	}
	if pinfo.FromSeq != 0 || pinfo.ResumeTick != 0 {
		t.Fatalf("promotion info = %+v, want a from-scratch takeover", pinfo)
	}
	if _, err := eng.Run(ticks); err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(eng.Profile())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fresh-start promotion diverged\n got: %s\nwant: %s", got, want)
	}
	// Its journal must recover like any primary's.
	rec, err := store.ReadDir(filepath.Join(base, "standby"))
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Sealed {
		t.Fatal("promoted-from-scratch run did not seal its journal")
	}
}

// TestStandbySealedStreamRefusesPromotion: after a clean primary shutdown the
// seal replicates, and promotion is refused — there is no failure to recover
// from, and the sealed replica journal must stay byte-faithful.
func TestStandbySealedStreamRefusesPromotion(t *testing.T) {
	base := t.TempDir()
	primaryDir := filepath.Join(base, "primary")
	cfg := standbyCfg(t, 6, 2, 8)

	prim, _, err := OpenDurable(cfg, DurableConfig{Dir: primaryDir})
	if err != nil {
		t.Fatal(err)
	}
	sb, _, err := OpenStandby(cfg, DurableConfig{Dir: filepath.Join(base, "standby")})
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()
	tl, err := store.OpenTail(primaryDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	for i := 0; i < 4; i++ {
		if _, err := prim.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if err := prim.Shutdown(); err != nil { // clean shutdown: snapshot + seal
		t.Fatal(err)
	}
	feedStandby(t, tl, sb)
	if !sb.Sealed() {
		t.Fatal("standby did not observe the primary's seal")
	}
	if _, _, err := sb.Promote("r0", "test"); !errors.Is(err, ErrSealedStream) {
		t.Fatalf("promotion over a sealed stream = %v, want ErrSealedStream", err)
	}
}
