// Command gridlint runs the repo's custom determinism/logging/locking
// analyzers (internal/lint) over the packages matching the given patterns.
//
// Exit codes follow the gofmt -l convention:
//
//	0  no findings: the tree satisfies every invariant
//	1  findings were printed (one per line)
//	2  operational error: bad flags, unloadable packages, analyzer crash
//
// so CI can distinguish "violations" from "the linter itself broke".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"loadbalance/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gridlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as one JSON object per line ({analyzer,file,line,col,message})")
	list := fs.Bool("list", false, "list the analyzers and their invariants, then exit 0")
	dir := fs.String("C", ".", "directory to resolve package patterns from")
	fs.Usage = func() {
		fmt.Fprintf(stderr, `usage: gridlint [flags] [packages]

Runs the gridlint analyzer suite (floatmaprange, walltime, globalrand,
structuredlog, lockedsend) over the packages matching the patterns
(default ./...). Violations can be suppressed at reviewed sites with

    //gridlint:allow analyzer(reason)

on the offending line or the line above; malformed annotations are
findings themselves and cannot be suppressed.

Exit codes (gofmt-style): 0 clean, 1 findings printed, 2 operational
error (bad flags, unloadable packages).

Flags:
`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "gridlint: %v\n", err)
		return 2
	}
	findings, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "gridlint: %v\n", err)
		return 2
	}
	if len(findings) == 0 {
		return 0
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		for _, f := range findings {
			if err := enc.Encode(f); err != nil {
				fmt.Fprintf(stderr, "gridlint: %v\n", err)
				return 2
			}
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	return 1
}
