package world

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"loadbalance/internal/units"
)

// winterDay returns a January evening-peak-prone day.
func winterDay() units.Interval {
	start := time.Date(1998, 1, 20, 0, 0, 0, 0, time.UTC)
	return units.Interval{Start: start, End: start.Add(24 * time.Hour)}
}

func TestWeatherDeterminism(t *testing.T) {
	m1 := NewWeatherModel(42)
	m2 := NewWeatherModel(42)
	at := time.Date(1998, 1, 20, 7, 30, 0, 0, time.UTC)
	if m1.At(at) != m2.At(at) {
		t.Fatal("same seed and instant must give identical weather")
	}
	m3 := NewWeatherModel(43)
	if m1.At(at) == m3.At(at) {
		t.Fatal("different seeds should give different weather")
	}
}

func TestWeatherSeasons(t *testing.T) {
	m := NewWeatherModel(1)
	jan := m.At(time.Date(1998, 1, 20, 14, 0, 0, 0, time.UTC))
	jul := m.At(time.Date(1998, 7, 20, 14, 0, 0, 0, time.UTC))
	if jan.TemperatureC >= jul.TemperatureC {
		t.Fatalf("January (%.1f) should be colder than July (%.1f)", jan.TemperatureC, jul.TemperatureC)
	}
}

func TestHeatingDegree(t *testing.T) {
	tests := []struct {
		name string
		give Weather
		want func(float64) bool
	}{
		{name: "warm no heating", give: Weather{TemperatureC: 25}, want: func(v float64) bool { return v == 0 }},
		{name: "cold heating", give: Weather{TemperatureC: -5}, want: func(v float64) bool { return v == 22 }},
		{name: "wind chill adds demand", give: Weather{TemperatureC: 10, WindSpeedMS: 10}, want: func(v float64) bool { return v == 10 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.give.HeatingDegree(); !tt.want(got) {
				t.Fatalf("HeatingDegree = %v", got)
			}
		})
	}
}

func TestNewHouseholdValidation(t *testing.T) {
	if _, err := NewHousehold("h", 0, false, 1); err == nil {
		t.Fatal("zero occupants should fail")
	}
	h, err := NewHousehold("h", 3, true, 1)
	if err != nil {
		t.Fatalf("NewHousehold: %v", err)
	}
	hasEV := false
	for _, d := range h.Devices {
		if d.Kind == KindEVCharger {
			hasEV = true
		}
	}
	if !hasEV {
		t.Fatal("hasEV household lacks EV charger")
	}
}

func TestHouseholdDemandPositiveAndBounded(t *testing.T) {
	h, err := NewHousehold("h", 4, true, 7)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWeatherModel(7)
	rated := 0.0
	for _, d := range h.Devices {
		rated += d.RatedKW
	}
	day := winterDay()
	for hr := 0; hr < 24; hr++ {
		at := day.Start.Add(time.Duration(hr) * time.Hour)
		p := h.DemandAt(at, w.At(at))
		if p < 0 {
			t.Fatalf("negative demand at %v", at)
		}
		if p.KWs() > rated {
			t.Fatalf("demand %.2f exceeds rated %.2f at %v", p.KWs(), rated, at)
		}
	}
}

func TestFlexibleShareWithinBounds(t *testing.T) {
	h, err := NewHousehold("h", 2, false, 3)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWeatherModel(3)
	at := winterDay().Start.Add(18 * time.Hour)
	share := h.FlexibleShareAt(at, w.At(at))
	if share <= 0 || share >= 1 {
		t.Fatalf("flexible share = %v, want in (0,1)", share)
	}
}

func TestPopulationConfigValidation(t *testing.T) {
	if _, err := NewPopulation(PopulationConfig{N: 0}); err == nil {
		t.Fatal("empty population should fail")
	}
	p, err := NewPopulation(PopulationConfig{N: 25, Seed: 5, EVShare: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Households) != 25 {
		t.Fatalf("households = %d, want 25", len(p.Households))
	}
	for _, h := range p.Households {
		if h.Occupants < 1 || h.Occupants > 6 {
			t.Fatalf("occupants %d out of range", h.Occupants)
		}
	}
}

func TestPopulationDeterminism(t *testing.T) {
	cfg := PopulationConfig{N: 10, Seed: 99, EVShare: 0.3}
	p1, err := NewPopulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPopulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	at := winterDay().Start.Add(18 * time.Hour)
	if p1.DemandAt(at) != p2.DemandAt(at) {
		t.Fatal("same config must give identical demand")
	}
}

// TestFigure1DemandCurve is the E1 shape check: a winter-day residential
// profile has at least a morning and an evening local peak, with the global
// peak in the evening block (17:00-21:00) and a meaningful peak-to-mean
// ratio. This is the qualitative content of Figure 1.
func TestFigure1DemandCurve(t *testing.T) {
	p, err := NewPopulation(PopulationConfig{N: 200, Seed: 1, EVShare: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := GenerateProfile(p, winterDay(), 15*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Samples) != 96 {
		t.Fatalf("samples = %d, want 96", len(prof.Samples))
	}
	peak, ok := prof.Peak()
	if !ok {
		t.Fatal("no peak")
	}
	if h := peak.Interval.Start.Hour(); h < 16 || h > 21 {
		t.Fatalf("global peak at %02d:00, want evening (16-21)", h)
	}
	if ptm := prof.PeakToMean(); ptm < 1.2 {
		t.Fatalf("peak-to-mean = %.2f, want >= 1.2", ptm)
	}
	peaks := prof.LocalPeaks(1.05)
	morning, evening := false, false
	for _, i := range peaks {
		switch h := prof.Samples[i].Interval.Start.Hour(); {
		case h >= 6 && h <= 10:
			morning = true
		case h >= 16 && h <= 21:
			evening = true
		}
	}
	if !morning || !evening {
		t.Fatalf("peaks at %v: want both a morning and an evening local peak", peaks)
	}
}

func TestGenerateProfileValidation(t *testing.T) {
	p, err := NewPopulation(PopulationConfig{N: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateProfile(p, winterDay(), 0); err == nil {
		t.Fatal("zero resolution should fail")
	}
	short := units.Interval{Start: winterDay().Start, End: winterDay().Start.Add(time.Minute)}
	if _, err := GenerateProfile(p, short, time.Hour); err == nil {
		t.Fatal("interval shorter than resolution should fail")
	}
}

func TestProfileEnergyAccounting(t *testing.T) {
	start := winterDay().Start
	prof := &Profile{Samples: []Sample{
		{Interval: units.Interval{Start: start, End: start.Add(time.Hour)}, Power: 2},
		{Interval: units.Interval{Start: start.Add(time.Hour), End: start.Add(2 * time.Hour)}, Power: 4},
	}}
	if got := prof.TotalEnergy(); !units.NearlyEqual(got.KWhs(), 6, 1e-9) {
		t.Fatalf("TotalEnergy = %v, want 6", got)
	}
	iv := units.Interval{Start: start, End: start.Add(time.Hour)}
	if got := prof.EnergyIn(iv); !units.NearlyEqual(got.KWhs(), 2, 1e-9) {
		t.Fatalf("EnergyIn = %v, want 2", got)
	}
	if got := prof.Mean(); !units.NearlyEqual(got.KWs(), 3, 1e-9) {
		t.Fatalf("Mean = %v, want 3", got)
	}
}

func TestProfileEmptyEdgeCases(t *testing.T) {
	var prof Profile
	if _, ok := prof.Peak(); ok {
		t.Fatal("empty profile should have no peak")
	}
	if prof.Mean() != 0 || prof.PeakToMean() != 0 {
		t.Fatal("empty profile stats should be zero")
	}
	if got := prof.ASCII(40); !strings.Contains(got, "empty") {
		t.Fatalf("ASCII of empty profile = %q", got)
	}
}

func TestProfileRenderers(t *testing.T) {
	start := winterDay().Start
	prof := &Profile{Samples: []Sample{
		{Interval: units.Interval{Start: start, End: start.Add(time.Hour)}, Power: 2},
		{Interval: units.Interval{Start: start.Add(time.Hour), End: start.Add(2 * time.Hour)}, Power: 4},
	}}
	csv := prof.CSV()
	if !strings.HasPrefix(csv, "slot_start,kw\n") || !strings.Contains(csv, "2.0000") {
		t.Fatalf("CSV = %q", csv)
	}
	ascii := prof.ASCII(10)
	if !strings.Contains(ascii, "#") {
		t.Fatalf("ASCII = %q", ascii)
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter()
	start := winterDay().Start
	slot := units.Interval{Start: start, End: start.Add(time.Hour)}
	m.Record("c1", Sample{Interval: slot, Power: 3})
	m.Record("c1", Sample{Interval: units.Interval{Start: slot.End, End: slot.End.Add(time.Hour)}, Power: 1})
	m.Record("c2", Sample{Interval: slot, Power: 5})

	day := winterDay()
	if got := m.EnergyOf("c1", day); !units.NearlyEqual(got.KWhs(), 4, 1e-9) {
		t.Fatalf("c1 energy = %v, want 4", got)
	}
	if got := m.EnergyOf("c1", slot); !units.NearlyEqual(got.KWhs(), 3, 1e-9) {
		t.Fatalf("c1 slot energy = %v, want 3", got)
	}
	if got := m.EnergyOf("ghost", day); got != 0 {
		t.Fatalf("unknown customer energy = %v, want 0", got)
	}
	if cs := m.Customers(); len(cs) != 2 || cs[0] != "c1" || cs[1] != "c2" {
		t.Fatalf("Customers = %v", cs)
	}
}

// Property: demand is always non-negative and flexible share in [0,1] for
// arbitrary instants.
func TestDemandProperties(t *testing.T) {
	h, err := NewHousehold("h", 3, true, 11)
	if err != nil {
		t.Fatal(err)
	}
	wm := NewWeatherModel(11)
	base := time.Date(1998, 1, 1, 0, 0, 0, 0, time.UTC)
	f := func(minutes uint32) bool {
		at := base.Add(time.Duration(minutes%525600) * time.Minute)
		w := wm.At(at)
		if h.DemandAt(at, w) < 0 {
			return false
		}
		share := h.FlexibleShareAt(at, w)
		return share >= 0 && share <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceKindString(t *testing.T) {
	if KindSpaceHeating.String() != "space_heating" {
		t.Fatal("kind string mismatch")
	}
	if !strings.Contains(DeviceKind(99).String(), "99") {
		t.Fatal("unknown kind string should include the number")
	}
}

func TestDemandByDeviceSumsToHousehold(t *testing.T) {
	// The per-device breakdown must use the same stochastic stream shape:
	// verify totals are close (each call advances the RNG, so compare two
	// separately-seeded identical households).
	h1, err := NewHousehold("h", 3, false, 21)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := NewHousehold("h", 3, false, 21)
	if err != nil {
		t.Fatal(err)
	}
	wm := NewWeatherModel(21)
	at := winterDay().Start.Add(18 * time.Hour)
	w := wm.At(at)
	total := h1.DemandAt(at, w)
	byDev := h2.DemandByDevice(at, w)
	sum := 0.0
	for _, p := range byDev {
		sum += p.KWs()
	}
	if !units.NearlyEqual(sum, total.KWs(), 1e-9) {
		t.Fatalf("device sum %.4f != household total %.4f", sum, total.KWs())
	}
}
