// Package tsdb is a bounded in-process time-series store: the history
// substrate behind /query, /fleet/query, windowed alert rules and gridctl
// plot. Every series owns a fixed-capacity ring of raw scrape points; raw
// points aged out of the ring are not discarded but folded, K at a time,
// into a coarser second-tier ring of aggregates, so recent history is
// dense and older history degrades gracefully instead of vanishing.
//
// The store never reads the clock: every append carries an injected
// microsecond timestamp (the scraper's tick, the hub's arrival stamp, a
// test's fake clock). That keeps the whole query surface a pure function
// of its inputs — the same determinism contract the journal replay paths
// obey — and is enforced by the gridlint walltime analyzer.
//
// Counters are stored as sampled cumulative values; rate()/increase()
// detect resets (value drops) pairwise at query time, so a process
// restart yields a small positive step, never a negative rate.
package tsdb

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Sample is one named value scraped at a shared timestamp.
type Sample struct {
	Name  string
	Value float64
}

// Point is one query-result sample.
type Point struct {
	TsUs  int64   `json:"tsUs"`
	Value float64 `json:"value"`
}

// agg is the internal point shape. Raw scrape points are aggregates of
// count 1; tier-2 points summarize DownsampleFactor evicted raw points.
// last carries the newest raw value in the window (the counter surface),
// min/max/sum/count carry the gauge surface for avg/max_over_time.
type agg struct {
	tsUs                 int64
	last, min, max, sumV float64
	count                int64
}

func rawPoint(tsUs int64, v float64) agg {
	return agg{tsUs: tsUs, last: v, min: v, max: v, sumV: v, count: 1}
}

// series is one named ring pair plus the fold accumulator bridging them.
type series struct {
	raw      []agg // fixed-capacity ring of raw points
	rawStart int
	rawLen   int
	ds       []agg // tier-2 ring of downsampled aggregates (lazily allocated)
	dsStart  int
	dsLen    int
	acc      agg // partial tier-2 aggregate being accumulated
	accN     int // raw evictions folded into acc so far
	lastTs   int64
}

// Config bounds a Store. Zero fields take defaults.
type Config struct {
	// RawCapacity is the per-series raw ring size (default 1024 points).
	RawCapacity int
	// DownsampleCapacity is the per-series tier-2 ring size (default 512).
	DownsampleCapacity int
	// DownsampleFactor is how many evicted raw points fold into one tier-2
	// aggregate (default 8).
	DownsampleFactor int
	// MaxSeries caps distinct series names; appends beyond it are dropped
	// and counted (default 4096).
	MaxSeries int
}

func (c Config) withDefaults() Config {
	if c.RawCapacity <= 0 {
		c.RawCapacity = 1024
	}
	if c.DownsampleCapacity <= 0 {
		c.DownsampleCapacity = 512
	}
	if c.DownsampleFactor <= 0 {
		c.DownsampleFactor = 8
	}
	if c.MaxSeries <= 0 {
		c.MaxSeries = 4096
	}
	return c
}

// Store holds bounded history for many series. Appends come from one
// scraper (or the hub's ingest path); queries from HTTP handlers and the
// alert engine, hence the lock.
type Store struct {
	mu      sync.Mutex
	cfg     Config
	series  map[string]*series
	names   []string // insertion order; sorted on demand
	evicted uint64   // raw-ring evictions (points folded into tier 2)
	dropped uint64   // appends rejected (series cap or out-of-order)
}

// New builds a store with cfg (zero fields defaulted).
func New(cfg Config) *Store {
	return &Store{cfg: cfg.withDefaults(), series: make(map[string]*series)}
}

// Append records one sample for name at the injected timestamp tsUs.
// Samples must arrive in timestamp order per series; stale or duplicate
// timestamps are dropped (and counted) to keep the rings sorted.
func (st *Store) Append(name string, tsUs int64, v float64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.appendLocked(name, tsUs, v)
}

// AppendBatch records samples sharing one injected timestamp, in sorted
// name order so store contents are independent of caller map iteration.
func (st *Store) AppendBatch(tsUs int64, samples []Sample) {
	sorted := append([]Sample(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, s := range sorted {
		st.appendLocked(s.Name, tsUs, s.Value)
	}
}

func (st *Store) appendLocked(name string, tsUs int64, v float64) {
	s := st.series[name]
	if s == nil {
		if len(st.series) >= st.cfg.MaxSeries {
			st.dropped++
			return
		}
		s = &series{raw: make([]agg, st.cfg.RawCapacity)}
		st.series[name] = s
		st.names = append(st.names, name)
	}
	if s.rawLen > 0 && tsUs <= s.lastTs {
		st.dropped++
		return
	}
	s.lastTs = tsUs
	if s.rawLen == len(s.raw) {
		old := s.raw[s.rawStart]
		s.rawStart = (s.rawStart + 1) % len(s.raw)
		s.rawLen--
		st.evicted++
		st.foldLocked(s, old)
	}
	s.raw[(s.rawStart+s.rawLen)%len(s.raw)] = rawPoint(tsUs, v)
	s.rawLen++
}

// foldLocked merges one evicted raw point into the series' tier-2
// accumulator, pushing a finished aggregate every DownsampleFactor folds.
func (st *Store) foldLocked(s *series, p agg) {
	if s.accN == 0 {
		s.acc = p
	} else {
		s.acc.tsUs = p.tsUs // aggregate is stamped at its window end
		s.acc.last = p.last
		if p.min < s.acc.min {
			s.acc.min = p.min
		}
		if p.max > s.acc.max {
			s.acc.max = p.max
		}
		s.acc.sumV += p.sumV
		s.acc.count += p.count
	}
	s.accN++
	if s.accN < st.cfg.DownsampleFactor {
		return
	}
	if s.ds == nil {
		s.ds = make([]agg, st.cfg.DownsampleCapacity)
	}
	if s.dsLen == len(s.ds) {
		s.dsStart = (s.dsStart + 1) % len(s.ds)
		s.dsLen--
	}
	s.ds[(s.dsStart+s.dsLen)%len(s.ds)] = s.acc
	s.dsLen++
	s.accN = 0
}

// window copies every point of name in (fromUs, toUs], oldest first:
// tier-2 aggregates, then the partial accumulator, then raw points.
func (st *Store) window(name string, fromUs, toUs int64) []agg {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := st.series[name]
	if s == nil {
		return nil
	}
	out := make([]agg, 0, s.dsLen+s.rawLen+1)
	take := func(p agg) {
		if p.tsUs > fromUs && p.tsUs <= toUs {
			out = append(out, p)
		}
	}
	for i := 0; i < s.dsLen; i++ {
		take(s.ds[(s.dsStart+i)%len(s.ds)])
	}
	if s.accN > 0 {
		take(s.acc)
	}
	for i := 0; i < s.rawLen; i++ {
		take(s.raw[(s.rawStart+i)%len(s.raw)])
	}
	return out
}

// SeriesNames returns every stored series name, sorted.
func (st *Store) SeriesNames() []string {
	st.mu.Lock()
	out := append([]string(nil), st.names...)
	st.mu.Unlock()
	sort.Strings(out)
	return out
}

// Stats is the store's self-accounting, exported as tsdb_* gauges.
type Stats struct {
	Series    int
	Points    int
	Evictions uint64
	Dropped   uint64
}

// Stats returns current store accounting.
func (st *Store) Stats() Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, s := range st.series {
		n += s.rawLen + s.dsLen
	}
	return Stats{Series: len(st.series), Points: n, Evictions: st.evicted, Dropped: st.dropped}
}

// WriteMetrics renders the store's self-metrics in exposition format.
func (st *Store) WriteMetrics(w io.Writer) {
	s := st.Stats()
	fmt.Fprintf(w, "# TYPE tsdb_series gauge\ntsdb_series %d\n", s.Series)
	fmt.Fprintf(w, "# TYPE tsdb_points gauge\ntsdb_points %d\n", s.Points)
	fmt.Fprintf(w, "# TYPE tsdb_evictions counter\ntsdb_evictions %d\n", s.Evictions)
	fmt.Fprintf(w, "# TYPE tsdb_dropped_samples counter\ntsdb_dropped_samples %d\n", s.Dropped)
}
