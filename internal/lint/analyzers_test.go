package lint_test

import (
	"regexp"
	"testing"

	"loadbalance/internal/lint"
	"loadbalance/internal/lint/linttest"
)

func TestFloatMapRange(t *testing.T) {
	linttest.Run(t, "testdata/src/floatmaprange/flag", "floatmaprange/flag", lint.FloatMapRange())
	linttest.Run(t, "testdata/src/floatmaprange/clean", "floatmaprange/clean", lint.FloatMapRange())
}

func walltimeForTest() *lint.Analyzer {
	return lint.Walltime(lint.WalltimeConfig{
		ForbiddenPkgs: []string{"walltime/flag"},
		RestrictedFuncs: map[string]*regexp.Regexp{
			"walltime/restricted": regexp.MustCompile(`^(Restore.*|applyJournalRecord)$`),
		},
	})
}

func TestWalltime(t *testing.T) {
	linttest.Run(t, "testdata/src/walltime/flag", "walltime/flag", walltimeForTest())
	linttest.Run(t, "testdata/src/walltime/clean", "walltime/clean", walltimeForTest())
	linttest.Run(t, "testdata/src/walltime/restricted", "walltime/restricted", walltimeForTest())
}

func TestGlobalRand(t *testing.T) {
	linttest.Run(t, "testdata/src/globalrand/flag", "globalrand/flag", lint.GlobalRand())
	linttest.Run(t, "testdata/src/globalrand/clean", "globalrand/clean", lint.GlobalRand())
}

func TestStructuredLog(t *testing.T) {
	linttest.Run(t, "testdata/src/structuredlog/flag", "structuredlog/flag", lint.StructuredLog())
	linttest.Run(t, "testdata/src/structuredlog/clean", "structuredlog/clean", lint.StructuredLog())
	linttest.Run(t, "testdata/src/structuredlog/mainpkg", "structuredlog/mainpkg", lint.StructuredLog())
}

func TestLockedSend(t *testing.T) {
	linttest.Run(t, "testdata/src/lockedsend/flag", "lockedsend/flag", lint.LockedSend())
	linttest.Run(t, "testdata/src/lockedsend/clean", "lockedsend/clean", lint.LockedSend())
}

// TestDefaultAnalyzers pins the suite's composition: CI wiring and the
// README document these five names.
func TestDefaultAnalyzers(t *testing.T) {
	want := []string{"floatmaprange", "walltime", "globalrand", "structuredlog", "lockedsend"}
	got := lint.DefaultAnalyzers()
	if len(got) != len(want) {
		t.Fatalf("got %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing doc or run", a.Name)
		}
	}
}
