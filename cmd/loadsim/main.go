// Command loadsim runs one load-balancing negotiation and prints the full
// per-round trace — the textual counterpart of the prototype's GUI screens
// in Figures 6-9 of the paper.
//
// Usage:
//
//	loadsim                          # the paper's Figures 6-9 scenario
//	loadsim -scenario population -n 50 -seed 7
//	loadsim -method offer            # compare announcement methods
//	loadsim -beta 3 -adaptive        # negotiation-speed experiments
//	loadsim -drop 0.1 -round-timeout 50ms
//	loadsim -shards 4                # hierarchical (concentrator) negotiation
//	loadsim -shards 4 -tcp           # concentrators behind TCP connections
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"loadbalance"
	"loadbalance/internal/utilityagent"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "loadsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("loadsim", flag.ContinueOnError)
	var (
		scenario     = fs.String("scenario", "paper", "scenario: paper | population")
		n            = fs.Int("n", 50, "population size (population scenario)")
		seed         = fs.Int64("seed", 1, "random seed")
		method       = fs.String("method", "reward_table", "method: reward_table | offer | request_for_bids | auto")
		beta         = fs.Float64("beta", 0, "override beta (0 keeps the scenario default)")
		adaptive     = fs.Bool("adaptive", false, "enable adaptive beta (Section 7 extension)")
		drop         = fs.Float64("drop", 0, "message drop rate in [0,1]")
		roundTimeout = fs.Duration("round-timeout", 0, "close rounds on timeout (required with -drop)")
		margin       = fs.Float64("margin", 0.2, "customer profit margin (population scenario)")
		verifyTrace  = fs.Bool("verify", true, "verify the trace against the protocol properties")
		shards       = fs.Int("shards", 0, "negotiate through this many Concentrator Agents (0 = flat)")
		tcp          = fs.Bool("tcp", false, "place each concentrator behind its own TCP connections (requires -shards)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		s   loadbalance.Scenario
		err error
	)
	switch *scenario {
	case "paper":
		s, err = loadbalance.PaperScenario()
	case "population":
		s, err = loadbalance.PopulationScenario(loadbalance.PopulationConfig{
			N: *n, Seed: *seed, Margin: *margin,
		})
	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}
	if err != nil {
		return err
	}

	switch *method {
	case "reward_table":
		s.Method = loadbalance.MethodRewardTable
	case "offer":
		s.Method = loadbalance.MethodOffer
	case "request_for_bids":
		s.Method = loadbalance.MethodRequestForBids
	case "auto":
		s.Method = loadbalance.MethodAuto
		s.LeadTime = 2 * time.Hour
	default:
		return fmt.Errorf("unknown method %q", *method)
	}
	if *beta > 0 {
		s.Params.Beta = *beta
	}
	s.Params.AdaptiveBeta = *adaptive
	s.DropRate = *drop
	s.RoundTimeout = *roundTimeout
	s.Seed = *seed

	if *tcp && *shards < 1 {
		return fmt.Errorf("-tcp requires -shards")
	}
	if *shards > 0 {
		return runSharded(s, *shards, *tcp)
	}

	res, err := loadbalance.Run(s)
	if err != nil {
		return err
	}
	fmt.Print(loadbalance.Render(res))

	if *verifyTrace && s.Method == utilityagent.MethodRewardTable && len(res.History) > 0 {
		rep := loadbalance.VerifyTrace(res, s.Params)
		if rep.OK() {
			fmt.Printf("\nverified %d protocol properties: all hold\n", len(rep.Checked))
		} else {
			return fmt.Errorf("trace violates protocol properties: %w", rep.Error())
		}
	}
	return nil
}

// runSharded negotiates the scenario through a concentrator tree, in-process
// or (with tcp) with every concentrator behind its own TCP connection pair,
// and prints the root-session trace plus the transport's counters.
func runSharded(s loadbalance.Scenario, shards int, tcp bool) error {
	if !tcp {
		res, err := loadbalance.RunSharded(loadbalance.ClusterConfig{Scenario: s, Shards: shards})
		if err != nil {
			return err
		}
		for _, e := range res.AgentErrors {
			return fmt.Errorf("agent error: %w", e)
		}
		fmt.Print(loadbalance.Render(&loadbalance.Result{Result: res.Result, Bus: sumShardStats(res)}))
		fmt.Printf("\nsharded over %d concentrators; awards above are per-concentrator aggregates\n", res.Shards)
		return nil
	}
	res, err := loadbalance.RunDistributed(loadbalance.DistributedConfig{Scenario: s, Shards: shards})
	if err != nil {
		return err
	}
	for _, e := range res.AgentErrors {
		return fmt.Errorf("agent error: %w", e)
	}
	fmt.Print(loadbalance.Render(&loadbalance.Result{Result: res.Result.Result, Bus: sumShardStats(&res.Result)}))
	fmt.Printf("\ndistributed over %d concentrator connection pairs (wire protocol v2)\n", res.Shards)
	fmt.Printf("wire: root %d frames in / %d out; member %d in / %d out; %d dropped, %d malformed\n",
		res.RootWire.FramesIn, res.RootWire.FramesOut,
		res.MemberWire.FramesIn, res.MemberWire.FramesOut,
		res.RootWire.Dropped+res.MemberWire.Dropped,
		res.RootWire.Malformed+res.MemberWire.Malformed)
	return nil
}

// sumShardStats folds both tiers' bus counters into one, so flat and
// sharded renders compare fairly.
func sumShardStats(res *loadbalance.ClusterResult) loadbalance.BusStats {
	total := res.ParentBus
	for _, s := range res.ShardBuses {
		total.Sent += s.Sent
		total.Delivered += s.Delivered
		total.Dropped += s.Dropped
		total.Rejected += s.Rejected
	}
	return total
}
