package loadbalance_test

import (
	"strings"
	"testing"

	"loadbalance"
)

// TestPublicAPIEndToEnd drives the library exactly as the README quickstart
// does: build the paper scenario, run it, render and verify the trace.
func TestPublicAPIEndToEnd(t *testing.T) {
	s, err := loadbalance.PaperScenario()
	if err != nil {
		t.Fatal(err)
	}
	res, err := loadbalance.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3", res.Rounds)
	}
	rep := loadbalance.VerifyTrace(res, s.Params)
	if !rep.OK() {
		t.Fatalf("trace violations: %v", rep.Violations)
	}
	out := loadbalance.Render(res)
	for _, want := range []string{"round 1", "round 3", "converged", "total reward paid"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// TestPublicAPICustomScenario builds a scenario by hand through the facade.
func TestPublicAPICustomScenario(t *testing.T) {
	prefs, err := loadbalance.NewPreferences(
		[]float64{0, 0.1, 0.2, 0.3},
		map[float64]float64{0: 0, 0.1: 3, 0.2: 7, 0.3: 12},
	)
	if err != nil {
		t.Fatal(err)
	}
	paper, err := loadbalance.PaperScenario()
	if err != nil {
		t.Fatal(err)
	}
	s := loadbalance.Scenario{
		SessionID:    "custom",
		Window:       paper.Window,
		NormalUse:    20,
		Method:       loadbalance.MethodRewardTable,
		Params:       loadbalance.PaperParams(),
		InitialSlope: 42.5,
		Customers: []loadbalance.CustomerSpec{
			{Name: "x", Predicted: 15, Allowed: 15, Prefs: prefs.WithExpectedUse(15), Strategy: loadbalance.StrategyGreedy},
			{Name: "y", Predicted: 12, Allowed: 12, Prefs: prefs.WithExpectedUse(12), Strategy: loadbalance.StrategyIncremental},
		},
	}
	res, err := loadbalance.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome == "" {
		t.Fatal("no outcome")
	}
	if res.FinalOveruseKWh >= res.InitialOveruseKWh {
		t.Fatalf("no reduction: %v → %v", res.InitialOveruseKWh, res.FinalOveruseKWh)
	}
}

// TestPublicAPISharded drives the hierarchical facade: the same scenario run
// flat and through concentrators agrees on outcome and overuse.
func TestPublicAPISharded(t *testing.T) {
	s, err := loadbalance.SyntheticScenario(loadbalance.SyntheticConfig{N: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := loadbalance.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := loadbalance.RunSharded(loadbalance.ClusterConfig{Scenario: s, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != flat.Outcome {
		t.Fatalf("outcome %q, flat %q", res.Outcome, flat.Outcome)
	}
	if res.Messages() == 0 || res.Shards != 4 {
		t.Fatalf("bad cluster result: %+v", res)
	}
}

// TestPublicAPIPopulation exercises the synthetic-fleet path.
func TestPublicAPIPopulation(t *testing.T) {
	s, err := loadbalance.PopulationScenario(loadbalance.PopulationConfig{
		N: 15, Seed: 2, Margin: 0.2, Method: loadbalance.MethodRewardTable,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := loadbalance.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	rep := loadbalance.VerifyTrace(res, s.Params)
	if !rep.OK() {
		t.Fatalf("violations: %v", rep.Violations)
	}
}
