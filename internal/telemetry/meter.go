package telemetry

import (
	"fmt"
	"math/rand"
	"sort"

	"loadbalance/internal/bus"
	"loadbalance/internal/message"
)

// Event is an injectable demand disturbance on one meter: between StartTick
// and EndTick (inclusive) the meter's underlying demand is multiplied by
// Factor. Factor > 1 models a load spike (cold snap, EV charging wave),
// Factor 0 an outage. Overlapping events multiply.
type Event struct {
	StartTick int
	EndTick   int
	Factor    float64
}

// validate checks one event.
func (e Event) validate() error {
	if e.StartTick < 0 || e.EndTick < e.StartTick {
		return fmt.Errorf("%w: event ticks [%d,%d]", ErrBadConfig, e.StartTick, e.EndTick)
	}
	if e.Factor < 0 {
		return fmt.Errorf("%w: event factor %v", ErrBadConfig, e.Factor)
	}
	return nil
}

// MeterConfig parameterises one customer meter.
type MeterConfig struct {
	// Customer is the metered customer's name.
	Customer string
	// BaseKWh is the customer's demand per tick before cut-downs and events
	// (its negotiated-window prediction divided over the window's ticks). A
	// per-tick series from a world profile may replace it via Series.
	BaseKWh float64
	// Series optionally replaces the flat BaseKWh with a per-tick baseline
	// (e.g. world.Profile.TickSeries()); ticks beyond its length wrap around.
	Series []float64
	// Jitter is the relative amplitude of the stochastic measurement noise:
	// each sample is scaled by 1 + Jitter·u with u uniform in [-1,1].
	Jitter float64
	// Seed drives the jitter stream (per meter, so fleets are deterministic
	// under any sampling order).
	Seed int64
	// Events are the demand disturbances to replay.
	Events []Event
}

// Meter samples one customer's actual consumption per live tick: baseline
// demand, scaled by the cut-down the customer currently honours, by any
// active events, and by stochastic jitter. Samples are deterministic for a
// given seed and tick sequence.
type Meter struct {
	cfg     MeterConfig
	rng     *rand.Rand
	cutDown float64
}

// NewMeter validates the configuration and constructs the meter.
func NewMeter(cfg MeterConfig) (*Meter, error) {
	if cfg.Customer == "" {
		return nil, fmt.Errorf("%w: empty customer name", ErrBadConfig)
	}
	if cfg.BaseKWh < 0 || (cfg.BaseKWh == 0 && len(cfg.Series) == 0) {
		return nil, fmt.Errorf("%w: base %v kWh/tick", ErrBadConfig, cfg.BaseKWh)
	}
	if cfg.Jitter < 0 || cfg.Jitter >= 1 {
		return nil, fmt.Errorf("%w: jitter %v out of [0,1)", ErrBadConfig, cfg.Jitter)
	}
	for _, e := range cfg.Events {
		if err := e.validate(); err != nil {
			return nil, fmt.Errorf("%s: %w", cfg.Customer, err)
		}
	}
	return &Meter{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// SetCutDown actuates an awarded cut-down: subsequent samples honour it.
func (m *Meter) SetCutDown(cd float64) {
	if cd < 0 {
		cd = 0
	}
	if cd > 1 {
		cd = 1
	}
	m.cutDown = cd
}

// CutDown returns the currently honoured cut-down.
func (m *Meter) CutDown() float64 { return m.cutDown }

// factorAt multiplies the active events' factors at a tick.
func (m *Meter) factorAt(tick int) float64 {
	f := 1.0
	for _, e := range m.cfg.Events {
		if tick >= e.StartTick && tick <= e.EndTick {
			f *= e.Factor
		}
	}
	return f
}

// baseAt returns the baseline demand for a tick.
func (m *Meter) baseAt(tick int) float64 {
	if len(m.cfg.Series) > 0 {
		return m.cfg.Series[tick%len(m.cfg.Series)]
	}
	return m.cfg.BaseKWh
}

// Sample measures the tick's actual consumption. Consuming a sample advances
// the meter's jitter stream, so each tick must be sampled exactly once.
func (m *Meter) Sample(tick int) message.MeterReading {
	jit := 1.0
	if m.cfg.Jitter > 0 {
		jit = 1 + m.cfg.Jitter*(2*m.rng.Float64()-1)
	}
	kwh := m.baseAt(tick) * m.factorAt(tick) * (1 - m.cutDown) * jit
	if kwh < 0 {
		kwh = 0
	}
	return message.MeterReading{Customer: m.cfg.Customer, Tick: tick, KWh: kwh}
}

// SkipTicks advances the jitter stream past n already-sampled ticks without
// producing readings — how a recovering grid fast-forwards its meters so the
// post-recovery samples are bit-identical to an uninterrupted run's. It
// draws exactly what Sample would have drawn.
func (m *Meter) SkipTicks(n int) {
	if m.cfg.Jitter <= 0 {
		return
	}
	for i := 0; i < n; i++ {
		m.rng.Float64()
	}
}

// defaultBatchSize bounds readings per published envelope: envelopes stay a
// few KB, and the bus carries fleet_size/batch envelopes per tick rather
// than one per customer.
const defaultBatchSize = 128

// Fleet is the set of meters attached to one customer fleet.
type Fleet struct {
	meters    []*Meter
	byName    map[string]*Meter
	batchSize int
}

// NewFleet assembles meters into a fleet. batchSize ≤ 0 uses the default.
func NewFleet(meters []*Meter, batchSize int) (*Fleet, error) {
	if len(meters) == 0 {
		return nil, fmt.Errorf("%w: empty fleet", ErrBadConfig)
	}
	if batchSize <= 0 {
		batchSize = defaultBatchSize
	}
	f := &Fleet{meters: meters, byName: make(map[string]*Meter, len(meters)), batchSize: batchSize}
	for _, m := range meters {
		if _, dup := f.byName[m.cfg.Customer]; dup {
			return nil, fmt.Errorf("%w: duplicate meter %q", ErrBadConfig, m.cfg.Customer)
		}
		f.byName[m.cfg.Customer] = m
	}
	// Deterministic sampling order regardless of construction order.
	sort.Slice(f.meters, func(i, j int) bool { return f.meters[i].cfg.Customer < f.meters[j].cfg.Customer })
	return f, nil
}

// Size returns the number of meters.
func (f *Fleet) Size() int { return len(f.meters) }

// SkipTicks fast-forwards every meter's jitter stream past n sampled ticks.
func (f *Fleet) SkipTicks(n int) {
	for _, m := range f.meters {
		m.SkipTicks(n)
	}
}

// Actuate pushes awarded cut-downs into the named meters.
func (f *Fleet) Actuate(bids map[string]float64) {
	for name, cd := range bids {
		if m, ok := f.byName[name]; ok {
			m.SetCutDown(cd)
		}
	}
}

// SampleTick measures every meter once and packs the readings into batches.
func (f *Fleet) SampleTick(tick int) []message.MeterBatch {
	batches := make([]message.MeterBatch, 0, (len(f.meters)+f.batchSize-1)/f.batchSize)
	cur := message.MeterBatch{Tick: tick, Readings: make([]message.MeterReading, 0, f.batchSize)}
	for _, m := range f.meters {
		cur.Readings = append(cur.Readings, m.Sample(tick))
		if len(cur.Readings) == f.batchSize {
			batches = append(batches, cur)
			cur = message.MeterBatch{Tick: tick, Readings: make([]message.MeterReading, 0, f.batchSize)}
		}
	}
	if len(cur.Readings) > 0 {
		batches = append(batches, cur)
	}
	return batches
}

// PublishTick samples the fleet and streams the batches over the bus to the
// collector agent. It returns the number of readings published.
func (f *Fleet) PublishTick(b bus.Bus, from, to, session string, tick int) (int, error) {
	published := 0
	for _, batch := range f.SampleTick(tick) {
		env, err := message.NewEnvelope(from, to, session, batch)
		if err != nil {
			return published, err
		}
		if err := b.Send(env); err != nil {
			return published, err
		}
		published += len(batch.Readings)
	}
	return published, nil
}
