package customeragent

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"loadbalance/internal/bus"
	"loadbalance/internal/message"
	"loadbalance/internal/resource"
	"loadbalance/internal/units"
	"loadbalance/internal/world"

	agentrt "loadbalance/internal/agent"
)

// paperLevels is the prototype's cut-down grid.
var paperLevels = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}

// paperCustomer reproduces the Figures 8-9 customer: it accepts 0.2 under
// the round-1 table, and 0.4 once rewards have grown past 21.
func paperCustomer(t *testing.T) Preferences {
	t.Helper()
	p, err := NewPreferences(paperLevels, map[float64]float64{
		0: 0, 0.1: 4, 0.2: 8, 0.3: 13, 0.4: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p.WithExpectedUse(13.5)
}

// linearTable builds a reward-table message with the given slope.
func linearTable(round int, slope float64) message.RewardTable {
	start := time.Date(1998, 1, 20, 17, 0, 0, 0, time.UTC)
	entries := make([]message.RewardEntry, len(paperLevels))
	for i, l := range paperLevels {
		entries[i] = message.RewardEntry{CutDown: l, Reward: slope * l}
	}
	return message.RewardTable{
		Window:  message.Window{Start: start, End: start.Add(2 * time.Hour)},
		Round:   round,
		Entries: entries,
	}
}

func TestNewPreferencesValidation(t *testing.T) {
	tests := []struct {
		name     string
		levels   []float64
		required map[float64]float64
	}{
		{name: "empty levels", levels: nil},
		{name: "unordered", levels: []float64{0, 0.2, 0.1}},
		{name: "grid not starting at 0", levels: []float64{0.1, 0.2}},
		{name: "negative requirement", levels: []float64{0, 0.1}, required: map[float64]float64{0: 0, 0.1: -1}},
		{name: "nonzero at 0", levels: []float64{0, 0.1}, required: map[float64]float64{0: 5, 0.1: 6}},
		{name: "decreasing requirements", levels: []float64{0, 0.1, 0.2}, required: map[float64]float64{0: 0, 0.1: 9, 0.2: 5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewPreferences(tt.levels, tt.required); !errors.Is(err, ErrBadPreferences) {
				t.Fatalf("error = %v, want ErrBadPreferences", err)
			}
		})
	}
}

func TestPreferencesAccessors(t *testing.T) {
	p := paperCustomer(t)
	if got := p.RequiredFor(0.4); got != 21 {
		t.Fatalf("RequiredFor(0.4) = %v", got)
	}
	if got := p.RequiredFor(0.5); !math.IsInf(got, 1) {
		t.Fatalf("RequiredFor(0.5) = %v, want +Inf", got)
	}
	if got := p.RequiredFor(0.25); !math.IsInf(got, 1) {
		t.Fatalf("off-grid level = %v, want +Inf", got)
	}
	if p.MaxCutDown != 0.4 {
		t.Fatalf("MaxCutDown = %v, want 0.4", p.MaxCutDown)
	}
	// Marginal cost: first finite step is 4 reward for 0.1×13.5 kWh.
	want := 4 / (0.1 * 13.5)
	if !units.NearlyEqual(p.MarginalComfortCost, want, 1e-9) {
		t.Fatalf("marginal = %v, want %v", p.MarginalComfortCost, want)
	}
	if got := p.Surplus(0.2, 10); !units.NearlyEqual(got, 2, 1e-12) {
		t.Fatalf("surplus = %v", got)
	}
}

func TestFromReport(t *testing.T) {
	h, err := world.NewHousehold("h", 3, false, 9)
	if err != nil {
		t.Fatal(err)
	}
	wm := world.NewWeatherModel(9)
	start := time.Date(1998, 1, 20, 17, 0, 0, 0, time.UTC)
	iv := units.Interval{Start: start, End: start.Add(2 * time.Hour)}
	rep, err := resource.BuildReport(h, iv, wm, 8)
	if err != nil {
		t.Fatal(err)
	}
	p, err := FromReport(rep, paperLevels, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if p.ExpectedUse != rep.TotalUse {
		t.Fatal("expected use should come from the report")
	}
	if p.MaxCutDown <= 0 {
		t.Fatal("household should have some flexibility")
	}
	if math.IsInf(p.MarginalComfortCost, 1) {
		t.Fatal("marginal comfort cost should be finite")
	}
}

// TestPaperDecisionSequence replays the Figures 8-9 storyline: the customer
// chooses 0.2 against the round-1 table and 0.4 once the reward at 0.4 has
// passed its requirement of 21.
func TestPaperDecisionSequence(t *testing.T) {
	prefs := paperCustomer(t)
	d, err := newDecider(prefs)
	if err != nil {
		t.Fatal(err)
	}
	// Round 1: linear slope 42.5 → rewards 4.25/8.5/12.75/17.
	bid1, err := d.DecideCutDown(prefs, StrategyGreedy, linearTable(1, 42.5), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !units.NearlyEqual(bid1, 0.2, 1e-12) {
		t.Fatalf("round 1 bid = %v, want 0.2", bid1)
	}
	// Round 2: slope grown to 53.66 → reward(0.4) = 21.46 ≥ 21.
	bid2, err := d.DecideCutDown(prefs, StrategyGreedy, linearTable(2, 53.66), bid1)
	if err != nil {
		t.Fatal(err)
	}
	if !units.NearlyEqual(bid2, 0.4, 1e-12) {
		t.Fatalf("round 2 bid = %v, want 0.4", bid2)
	}
	// Round 3: rewards grow further; the bid stands still at 0.4.
	bid3, err := d.DecideCutDown(prefs, StrategyGreedy, linearTable(3, 62), bid2)
	if err != nil {
		t.Fatal(err)
	}
	if !units.NearlyEqual(bid3, 0.4, 1e-12) {
		t.Fatalf("round 3 bid = %v, want 0.4", bid3)
	}
}

func TestDecideCutDownNeverRegresses(t *testing.T) {
	prefs := paperCustomer(t)
	d, err := newDecider(prefs)
	if err != nil {
		t.Fatal(err)
	}
	// Last bid 0.3 but table only justifies 0.2: the bid must stay 0.3.
	bid, err := d.DecideCutDown(prefs, StrategyGreedy, linearTable(2, 42.5), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if bid != 0.3 {
		t.Fatalf("bid = %v, want floor 0.3", bid)
	}
}

func TestStrategyIncremental(t *testing.T) {
	prefs := paperCustomer(t)
	d, err := newDecider(prefs)
	if err != nil {
		t.Fatal(err)
	}
	// Generous table: greedy would jump to 0.4; incremental concedes 0.1.
	rich := linearTable(1, 100)
	bid, err := d.DecideCutDown(prefs, StrategyIncremental, rich, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !units.NearlyEqual(bid, 0.1, 1e-12) {
		t.Fatalf("incremental first bid = %v, want 0.1", bid)
	}
	bid, err = d.DecideCutDown(prefs, StrategyIncremental, rich, bid)
	if err != nil {
		t.Fatal(err)
	}
	if !units.NearlyEqual(bid, 0.2, 1e-12) {
		t.Fatalf("incremental second bid = %v, want 0.2", bid)
	}
}

func TestStrategyHoldout(t *testing.T) {
	prefs := paperCustomer(t)
	d, err := newDecider(prefs)
	if err != nil {
		t.Fatal(err)
	}
	// Round-1 table: 8.5 at 0.2 vs requirement 8. Acceptable, but below the
	// 15% holdout premium (9.2), so the holdout stays at 0.
	bid, err := d.DecideCutDown(prefs, StrategyHoldout, linearTable(1, 42.5), 0)
	if err != nil {
		t.Fatal(err)
	}
	if bid != 0 {
		t.Fatalf("holdout round 1 bid = %v, want 0", bid)
	}
	// Premium reached at several levels: 0.3 pays 15 ≥ 1.15×13 = 14.95 and
	// is the deepest level clearing the premium, so the holdout bids 0.3.
	bid, err = d.DecideCutDown(prefs, StrategyHoldout, linearTable(2, 50), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !units.NearlyEqual(bid, 0.3, 1e-12) {
		t.Fatalf("holdout round 2 bid = %v, want 0.3", bid)
	}
}

func TestDecideCutDownUnknownStrategy(t *testing.T) {
	prefs := paperCustomer(t)
	d, err := newDecider(prefs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.DecideCutDown(prefs, Strategy(99), linearTable(1, 42.5), 0); !errors.Is(err, ErrBadStrategy) {
		t.Fatalf("error = %v, want ErrBadStrategy", err)
	}
}

func TestDecideOffer(t *testing.T) {
	prefs := paperCustomer(t) // 13.5 kWh expected, marginal cost ~2.96/kWh
	window := message.Window{
		Start: time.Date(1998, 1, 20, 17, 0, 0, 0, time.UTC),
		End:   time.Date(1998, 1, 20, 19, 0, 0, 0, time.UTC),
	}
	tests := []struct {
		name  string
		terms message.OfferTerms
		want  bool
	}{
		{
			// Cap 13.5×0.8 = 10.8; decline 13.5×1 = 13.5; accept = 10.8×0.5
			// + cheaper of (2.7×2.0 high) vs (2.7×2.96 shed) = 5.4+5.4 =
			// 10.8 < 13.5 → accept.
			name:  "worthwhile discount",
			terms: message.OfferTerms{Window: window, XMax: 0.8, AllowanceKWh: 13.5, LowPrice: 0.5, NormalPrice: 1, HighPrice: 2},
			want:  true,
		},
		{
			// Tiny discount with harsh excess price: accept = 13.23×0.98 +
			// cheap-side excess ≈ 12.97 + min(0.54, 0.8) → still less than
			// 13.5? 0.27 kWh excess at high 3 → 0.81, shed 0.8. accept ≈
			// 13.76 > 13.5 → decline.
			name:  "not worth it",
			terms: message.OfferTerms{Window: window, XMax: 0.98, AllowanceKWh: 13.5, LowPrice: 0.98, NormalPrice: 1, HighPrice: 3},
			want:  false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := DecideOffer(prefs, tt.terms); got != tt.want {
				t.Fatalf("DecideOffer = %v, want %v", got, tt.want)
			}
		})
	}
	// A customer with no expected use accepts trivially.
	idle, err := NewPreferences(paperLevels, map[float64]float64{0: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !DecideOffer(idle, tests[0].terms) {
		t.Fatal("idle customer should accept")
	}
}

func TestDecideEnergyBid(t *testing.T) {
	prefs := paperCustomer(t)
	req := message.BidRequest{
		Window: message.Window{
			Start: time.Date(1998, 1, 20, 17, 0, 0, 0, time.UTC),
			End:   time.Date(1998, 1, 20, 19, 0, 0, 0, time.UTC),
		},
		Round: 1, LowPrice: 0.5, NormalPrice: 1, HighPrice: 4,
	}
	// Step = 0.1×13.5 = 1.35 kWh; premium saved = 3.5×1.35 = 4.725 >
	// comfort 2.96×1.35 = 4.0 → step forward.
	got := DecideEnergyBid(prefs, req, 13.5)
	if !units.NearlyEqual(got, 12.15, 1e-9) {
		t.Fatalf("bid = %v, want 12.15", got)
	}
	// Cheap peak power: premium 0.5×1.35 = 0.675 < comfort → stand still.
	cheap := req
	cheap.HighPrice = 1
	if got := DecideEnergyBid(prefs, cheap, 13.5); got != 13.5 {
		t.Fatalf("bid = %v, want stand-still 13.5", got)
	}
	// Never below the feasibility floor 13.5×0.6 = 8.1.
	if got := DecideEnergyBid(prefs, req, 8.5); got < 8.1-1e-9 {
		t.Fatalf("bid %v below floor", got)
	}
	if got := DecideEnergyBid(prefs, req, 8.1); got != 8.1 {
		t.Fatalf("bid at floor = %v, want stand-still", got)
	}
}

func TestNewAgentValidation(t *testing.T) {
	prefs := paperCustomer(t)
	if _, err := New("", prefs, StrategyGreedy); err == nil {
		t.Fatal("empty name should fail")
	}
	if _, err := New("c1", prefs, Strategy(42)); !errors.Is(err, ErrBadStrategy) {
		t.Fatal("bad strategy should fail")
	}
	a, err := New("c1", prefs, StrategyGreedy)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "c1" || a.Preferences().MaxCutDown != 0.4 {
		t.Fatalf("agent = %+v", a)
	}
}

// TestAgentRespondsToRewardTable runs the CA on a live bus and checks it
// answers an announcement with its bid.
func TestAgentRespondsToRewardTable(t *testing.T) {
	b, err := bus.NewInProc(bus.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	uaBox, err := b.Register("ua", 8)
	if err != nil {
		t.Fatal(err)
	}

	ca, err := New("c1", paperCustomer(t), StrategyGreedy)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := agentrt.Start("c1", b, ca, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	env, err := message.NewEnvelope("ua", "c1", "s1", linearTable(1, 42.5))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Send(env); err != nil {
		t.Fatal(err)
	}
	select {
	case reply := <-uaBox:
		p, err := reply.Decode()
		if err != nil {
			t.Fatal(err)
		}
		bid, ok := p.(message.CutDownBid)
		if !ok {
			t.Fatalf("reply = %T", p)
		}
		if bid.Round != 1 || !units.NearlyEqual(bid.CutDown, 0.2, 1e-12) {
			t.Fatalf("bid = %+v, want round 1 cut-down 0.2", bid)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no bid received")
	}
	if got := ca.LastBid("s1"); !units.NearlyEqual(got, 0.2, 1e-12) {
		t.Fatalf("LastBid = %v", got)
	}
}

// TestAgentSessionLifecycle covers award receipt and end-of-session
// handling, including silence after SessionEnd.
func TestAgentSessionLifecycle(t *testing.T) {
	b, err := bus.NewInProc(bus.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	uaBox, err := b.Register("ua", 8)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := New("c1", paperCustomer(t), StrategyGreedy)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := agentrt.Start("c1", b, ca, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	send := func(p message.Payload) {
		t.Helper()
		env, err := message.NewEnvelope("ua", "c1", "s1", p)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Send(env); err != nil {
			t.Fatal(err)
		}
	}
	send(message.Award{Round: 3, CutDown: 0.4, Reward: 24.8})
	send(message.SessionEnd{Round: 3, Reason: "converged"})
	// A table after session end must not produce a bid.
	send(linearTable(4, 80))

	deadline := time.After(2 * time.Second)
	for {
		if _, ok := ca.AwardFor("s1"); ok {
			break
		}
		select {
		case <-deadline:
			t.Fatal("award never recorded")
		case <-time.After(time.Millisecond):
		}
	}
	award, _ := ca.AwardFor("s1")
	if award.Reward != 24.8 {
		t.Fatalf("award = %+v", award)
	}
	// Allow any in-flight handling to finish, then check no bid arrived.
	time.Sleep(50 * time.Millisecond)
	select {
	case env := <-uaBox:
		t.Fatalf("CA responded after session end: %+v", env)
	default:
	}
	if _, ok := ca.AwardFor("nosession"); ok {
		t.Fatal("award for unknown session")
	}
	if got := ca.LastBid("nosession"); got != 0 {
		t.Fatalf("LastBid unknown session = %v", got)
	}
}

func TestStrategyString(t *testing.T) {
	for _, s := range []Strategy{StrategyGreedy, StrategyIncremental, StrategyHoldout, Strategy(9)} {
		if s.String() == "" {
			t.Fatal("empty strategy string")
		}
	}
}

// Property: for any pair of tables where the second dominates the first,
// the greedy decision against the second is at least the decision against
// the first (the customer half of monotonic concession emerges from the
// decision rule alone).
func TestDecisionMonotoneInTableProperty(t *testing.T) {
	prefs := paperCustomer(t)
	f := func(s1Raw, s2Raw uint8) bool {
		slope1 := 20 + float64(s1Raw%60)
		slope2 := slope1 + float64(s2Raw%40) // dominating table
		d, err := newDecider(prefs)
		if err != nil {
			return false
		}
		bid1, err := d.DecideCutDown(prefs, StrategyGreedy, linearTable(1, slope1), 0)
		if err != nil {
			return false
		}
		bid2, err := d.DecideCutDown(prefs, StrategyGreedy, linearTable(2, slope2), bid1)
		if err != nil {
			return false
		}
		return bid2 >= bid1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the greedy bid never exceeds the customer's feasible maximum.
func TestDecisionRespectsFeasibilityProperty(t *testing.T) {
	prefs := paperCustomer(t)
	f := func(sRaw uint8) bool {
		slope := 20 + float64(sRaw) // arbitrarily rich tables
		d, err := newDecider(prefs)
		if err != nil {
			return false
		}
		bid, err := d.DecideCutDown(prefs, StrategyGreedy, linearTable(1, slope), 0)
		if err != nil {
			return false
		}
		return bid <= prefs.MaxCutDown+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
