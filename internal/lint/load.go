package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// A Package is one loaded, parsed and type-checked package ready for
// analysis.
type Package struct {
	PkgPath   string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Load loads the packages matching the go-list patterns (e.g. "./...")
// rooted at dir, parses their non-test Go files with comments, and
// type-checks them against compiler export data produced by
// `go list -export`. It needs no network and no module downloads: export
// data for the standard library and the module's own packages comes out of
// the build cache.
//
// Test files are not loaded: the invariants gridlint guards are about
// production replay paths, and test-only wall-clock or logging is fine.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := goList(dir, nil, patterns...)
	if err != nil {
		return nil, err
	}
	deps, err := goList(dir, []string{"-export", "-deps"}, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(deps))
	for _, p := range deps {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		if t.Standard {
			continue
		}
		pkg, err := checkPackage(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir loads a single package from the .go files directly inside dir
// (no `go list` involvement, so it works on testdata trees the go tool
// ignores). pkgPath is the synthetic import path given to the package;
// scope-gated analyzers match against it. Imports must resolve within the
// standard library.
func LoadDir(dir, pkgPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	sort.Strings(files)
	fset := token.NewFileSet()
	imp, err := stdlibImporter(fset)
	if err != nil {
		return nil, err
	}
	return checkPackage(fset, imp, pkgPath, dir, files)
}

func checkPackage(fset *token.FileSet, imp types.Importer, pkgPath, dir string, fileNames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", pkgPath, err)
	}
	return &Package{PkgPath: pkgPath, Fset: fset, Files: files, Types: tpkg, TypesInfo: info}, nil
}

// exportImporter type-checks imports from the export-data files goList
// collected.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	})
}

// stdlibExports caches standard-library export data across LoadDir calls:
// `go list -export std` is a one-time ~seconds cost per process, nothing
// per fixture.
var stdlibExports struct {
	once sync.Once
	m    map[string]string
	err  error
}

func stdlibImporter(fset *token.FileSet) (types.Importer, error) {
	stdlibExports.once.Do(func() {
		pkgs, err := goList(".", []string{"-export", "-deps"}, "std")
		if err != nil {
			stdlibExports.err = err
			return
		}
		stdlibExports.m = make(map[string]string, len(pkgs))
		for _, p := range pkgs {
			if p.Export != "" {
				stdlibExports.m[p.ImportPath] = p.Export
			}
		}
	})
	if stdlibExports.err != nil {
		return nil, stdlibExports.err
	}
	return exportImporter(fset, stdlibExports.m), nil
}

type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Error      *struct{ Err string }
}

func goList(dir string, extra []string, patterns ...string) ([]listPkg, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,Export,GoFiles,Standard,Error"}, extra...)
	args = append(args, "--")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v: %s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []listPkg
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
