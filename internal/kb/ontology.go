package kb

import (
	"errors"
	"fmt"
)

// Errors reported by ontology construction and validation.
var (
	ErrUnknownSort      = errors.New("kb: unknown sort")
	ErrUnknownConstant  = errors.New("kb: unknown constant")
	ErrUnknownPredicate = errors.New("kb: unknown predicate")
	ErrDuplicate        = errors.New("kb: duplicate declaration")
	ErrArity            = errors.New("kb: arity mismatch")
	ErrSortMismatch     = errors.New("kb: sort mismatch")
	ErrNotGround        = errors.New("kb: atom is not ground")
)

// Builtin sorts available in every ontology. "number" and "string" cover the
// literal term kinds; "any" is the top sort.
const (
	SortAny    = "any"
	SortNumber = "number"
	SortString = "string"
)

// Ontology is an information type in the DESIRE sense: a lexicon of sorts
// (with a sub-sort partial order), constants belonging to sorts, and
// predicates with sorted argument positions. Ontologies compose: see Merge.
type Ontology struct {
	parents    map[string]string   // sort -> parent sort ("" for roots)
	constSorts map[string]string   // constant -> sort
	predicates map[string][]string // predicate -> argument sorts
}

// NewOntology returns an ontology containing only the builtin sorts.
func NewOntology() *Ontology {
	o := &Ontology{
		parents:    make(map[string]string),
		constSorts: make(map[string]string),
		predicates: make(map[string][]string),
	}
	o.parents[SortAny] = ""
	o.parents[SortNumber] = SortAny
	o.parents[SortString] = SortAny
	return o
}

// DeclareSort adds a sort beneath the given parent. Parent must already be
// declared; use SortAny for roots.
func (o *Ontology) DeclareSort(name, parent string) error {
	if _, ok := o.parents[name]; ok {
		return fmt.Errorf("%w: sort %q", ErrDuplicate, name)
	}
	if _, ok := o.parents[parent]; !ok {
		return fmt.Errorf("%w: parent %q of %q", ErrUnknownSort, parent, name)
	}
	o.parents[name] = parent
	return nil
}

// DeclareConst adds a constant with the given sort.
func (o *Ontology) DeclareConst(name, sort string) error {
	if _, ok := o.constSorts[name]; ok {
		return fmt.Errorf("%w: constant %q", ErrDuplicate, name)
	}
	if _, ok := o.parents[sort]; !ok {
		return fmt.Errorf("%w: %q for constant %q", ErrUnknownSort, sort, name)
	}
	o.constSorts[name] = sort
	return nil
}

// DeclarePred adds a predicate with sorted argument positions.
func (o *Ontology) DeclarePred(name string, argSorts ...string) error {
	if _, ok := o.predicates[name]; ok {
		return fmt.Errorf("%w: predicate %q", ErrDuplicate, name)
	}
	for _, s := range argSorts {
		if _, ok := o.parents[s]; !ok {
			return fmt.Errorf("%w: %q in predicate %q", ErrUnknownSort, s, name)
		}
	}
	o.predicates[name] = append([]string(nil), argSorts...)
	return nil
}

// HasSort reports whether the sort is declared.
func (o *Ontology) HasSort(name string) bool {
	_, ok := o.parents[name]
	return ok
}

// SortOfConst returns the sort of a declared constant.
func (o *Ontology) SortOfConst(name string) (string, error) {
	s, ok := o.constSorts[name]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownConstant, name)
	}
	return s, nil
}

// IsSubsort reports whether sub is equal to, or a descendant of, super.
func (o *Ontology) IsSubsort(sub, super string) bool {
	for cur := sub; cur != ""; {
		if cur == super {
			return true
		}
		parent, ok := o.parents[cur]
		if !ok {
			return false
		}
		cur = parent
	}
	return super == ""
}

// sortOfTerm resolves the sort of a ground term.
func (o *Ontology) sortOfTerm(t Term) (string, error) {
	switch t.Kind {
	case KindConst:
		return o.SortOfConst(t.Name)
	case KindNumber:
		return SortNumber, nil
	case KindString:
		return SortString, nil
	default:
		return "", ErrNotGround
	}
}

// CheckAtom validates that a ground atom is well-formed with respect to this
// ontology: the predicate exists, the arity matches and every argument's sort
// is a subsort of the declared position sort.
func (o *Ontology) CheckAtom(a Atom) error {
	sorts, ok := o.predicates[a.Pred]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownPredicate, a.Pred)
	}
	if len(sorts) != len(a.Args) {
		return fmt.Errorf("%w: %s has %d args, want %d", ErrArity, a.Pred, len(a.Args), len(sorts))
	}
	for i, t := range a.Args {
		if !t.IsGround() {
			return fmt.Errorf("%w: %s", ErrNotGround, a)
		}
		got, err := o.sortOfTerm(t)
		if err != nil {
			return fmt.Errorf("%s arg %d: %w", a.Pred, i, err)
		}
		if !o.IsSubsort(got, sorts[i]) {
			return fmt.Errorf("%w: %s arg %d has sort %q, want %q", ErrSortMismatch, a.Pred, i, got, sorts[i])
		}
	}
	return nil
}

// Merge folds another ontology into this one, implementing DESIRE's
// composition of information types. Conflicting re-declarations (same name,
// different definition) are errors; identical re-declarations are ignored.
func (o *Ontology) Merge(other *Ontology) error {
	for name, parent := range other.parents {
		if cur, ok := o.parents[name]; ok {
			if cur != parent {
				return fmt.Errorf("%w: sort %q (parents %q vs %q)", ErrDuplicate, name, cur, parent)
			}
			continue
		}
		o.parents[name] = parent
	}
	for name, sort := range other.constSorts {
		if cur, ok := o.constSorts[name]; ok {
			if cur != sort {
				return fmt.Errorf("%w: constant %q (sorts %q vs %q)", ErrDuplicate, name, cur, sort)
			}
			continue
		}
		o.constSorts[name] = sort
	}
	for name, sorts := range other.predicates {
		if cur, ok := o.predicates[name]; ok {
			if !equalStrings(cur, sorts) {
				return fmt.Errorf("%w: predicate %q", ErrDuplicate, name)
			}
			continue
		}
		o.predicates[name] = append([]string(nil), sorts...)
	}
	return nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
