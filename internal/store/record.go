package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"

	"loadbalance/internal/message"
)

// Kind tags the payload type of a journal record, mirroring the envelope
// kinds of the message package: a one-byte discriminator ahead of an opaque
// body. Cold-path bodies are JSON documents (schemas evolve faster than the
// framing); the hot-path tick checkpoint uses a dedicated binary body.
type Kind byte

// Record kinds.
const (
	// KindScenario registers the grid being operated: the seeded inputs a
	// recovering process must present again for its journal to apply.
	KindScenario Kind = 0x01
	// KindTopology records the shard partition fronting the fleet.
	KindTopology Kind = 0x02
	// KindSession records one negotiation session's terminal outcome and the
	// awards it committed.
	KindSession Kind = 0x03
	// KindTick is the meter-batch checkpoint: one closed live tick's
	// per-shard measured energies. The journal's hot path.
	KindTick Kind = 0x04
	// KindReneg records a deviation-triggered incremental re-negotiation
	// together with the tick checkpoint it fired on, in a single frame so a
	// torn write can never persist the measurement without the decision.
	KindReneg Kind = 0x05
	// KindAborted marks a session that was interrupted before any outcome
	// was committed; recovery must never replay it as half-committed.
	KindAborted Kind = 0x06
	// KindSeal marks a clean shutdown: everything before it is complete.
	KindSeal Kind = 0x07
	// KindPromote seals the divergence point of a promoted standby: every
	// record before it was replicated from the old primary; everything after
	// it was produced by this journal's owner as the new primary.
	KindPromote Kind = 0x08
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindScenario:
		return "scenario"
	case KindTopology:
		return "topology"
	case KindSession:
		return "session"
	case KindTick:
		return "tick"
	case KindReneg:
		return "reneg"
	case KindAborted:
		return "aborted"
	case KindSeal:
		return "seal"
	case KindPromote:
		return "promote"
	default:
		return fmt.Sprintf("kind(0x%02x)", byte(k))
	}
}

// crcTable is the Castagnoli polynomial, hardware-accelerated on the
// platforms the grid runs on.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record is one journal entry: a kind tag and an opaque body.
type Record struct {
	Kind Kind
	Body []byte
}

// appendFrame appends the record's on-disk frame to dst:
//
//	kind (1 byte)
//	uvarint(len(body)) body   (the message codec's length-prefixed string)
//	crc32c (4 bytes, little-endian, over everything above)
func appendFrame(dst []byte, r Record) []byte {
	start := len(dst)
	dst = append(dst, byte(r.Kind))
	dst = message.AppendLenPrefixed(dst, r.Body)
	sum := crc32.Checksum(dst[start:], crcTable)
	return binary.LittleEndian.AppendUint32(dst, sum)
}

// frameSize returns the encoded size of a record with an n-byte body.
func frameSize(n int) int { return 1 + message.LenPrefixedSize(n) + 4 }

// decodeFrame parses one frame from the head of data, returning the record
// and the bytes consumed. ErrTruncated reports a frame that ends mid-field
// (the crash-torn tail); ErrCorrupt a structurally complete frame whose
// checksum does not match. The record body aliases data.
func decodeFrame(data []byte) (Record, int, error) {
	if len(data) == 0 {
		return Record{}, 0, ErrTruncated
	}
	body, rest, err := message.ReadLenPrefixed(data[1:])
	if err != nil {
		return Record{}, 0, fmt.Errorf("%w: record body", ErrTruncated)
	}
	if len(rest) < 4 {
		return Record{}, 0, fmt.Errorf("%w: record checksum", ErrTruncated)
	}
	framed := len(data) - len(rest)
	sum := crc32.Checksum(data[:framed], crcTable)
	if sum != binary.LittleEndian.Uint32(rest[:4]) {
		return Record{}, 0, fmt.Errorf("%w: checksum mismatch on %s record", ErrCorrupt, Kind(data[0]))
	}
	return Record{Kind: Kind(data[0]), Body: body}, framed + 4, nil
}

// AwardEntry is one customer's committed agreement inside a session record.
type AwardEntry struct {
	CutDown float64 `json:"cutDown"`
	Reward  float64 `json:"reward"`
}

// ScenarioInfo fingerprints the seeded inputs of the grid a journal belongs
// to. Recovery validates the running configuration against it: replaying a
// journal into a differently-parameterised grid would silently corrupt state.
type ScenarioInfo struct {
	SessionID      string  `json:"sessionId"`
	Customers      int     `json:"customers"`
	Shards         int     `json:"shards"`
	TicksPerWindow int     `json:"ticksPerWindow"`
	Seed           int64   `json:"seed"`
	Jitter         float64 `json:"jitter"`
}

// TopologyInfo records the shard partition (a membership change writes a new
// one; recovery applies the latest).
type TopologyInfo struct {
	Shards     int   `json:"shards"`
	Fleet      int   `json:"fleet"`
	ShardSizes []int `json:"shardSizes"`
}

// SessionOutcome is a negotiation session's terminal record: the standing
// bids and awards it committed. Result optionally carries a renderer-specific
// document (loadsim stores its full saved result there); Config optionally
// fingerprints the parameters the session ran under, so a resume can refuse
// to replay an outcome computed under different parameters.
type SessionOutcome struct {
	SessionID string                `json:"sessionId"`
	Outcome   string                `json:"outcome"`
	Rounds    int                   `json:"rounds"`
	Config    string                `json:"config,omitempty"`
	Bids      map[string]float64    `json:"bids,omitempty"`
	Awards    map[string]AwardEntry `json:"awards,omitempty"`
	Result    json.RawMessage       `json:"result,omitempty"`
}

// TickCheckpoint is one closed live tick: the per-shard measured energies
// plus the collector's reading/batch counts for the tick. Encoded in binary
// (bit-exact float64s, no JSON overhead) because it is appended every tick.
type TickCheckpoint struct {
	Tick     int
	Shard    []float64
	Readings int64
	Batches  int64
}

// RenegOutcome records one deviation-triggered incremental re-negotiation
// and the tick checkpoint it fired on.
type RenegOutcome struct {
	Checkpoint TickCheckpoint        `json:"checkpoint"`
	SessionSeq int                   `json:"sessionSeq"`
	SessionID  string                `json:"sessionId"`
	Shards     []int                 `json:"shards"`
	Members    int                   `json:"members"`
	Outcome    string                `json:"outcome"`
	Factors    map[int]float64       `json:"factors"`
	Bids       map[string]float64    `json:"bids"`
	Awards     map[string]AwardEntry `json:"awards"`
}

// AbortInfo marks a session interrupted before its outcome.
type AbortInfo struct {
	SessionID string `json:"sessionId"`
	Reason    string `json:"reason"`
}

// PromoteInfo records a standby's promotion to primary: the replica that
// promoted, the replicated journal position it diverged from, and why.
type PromoteInfo struct {
	Replica string `json:"replica"`
	FromSeq uint64 `json:"fromSeq"`
	Reason  string `json:"reason"`
}

// newJSONRecord marshals a cold-path body.
func newJSONRecord(k Kind, body any) (Record, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return Record{}, fmt.Errorf("store: marshal %s record: %w", k, err)
	}
	return Record{Kind: k, Body: b}, nil
}

// NewScenarioRecord builds a scenario-registration record.
func NewScenarioRecord(s ScenarioInfo) (Record, error) { return newJSONRecord(KindScenario, s) }

// NewTopologyRecord builds a membership/topology record.
func NewTopologyRecord(t TopologyInfo) (Record, error) { return newJSONRecord(KindTopology, t) }

// NewSessionRecord builds a session-outcome record.
func NewSessionRecord(o SessionOutcome) (Record, error) { return newJSONRecord(KindSession, o) }

// NewRenegRecord builds a re-negotiation record.
func NewRenegRecord(o RenegOutcome) (Record, error) { return newJSONRecord(KindReneg, o) }

// NewAbortRecord builds an aborted-session record.
func NewAbortRecord(a AbortInfo) (Record, error) { return newJSONRecord(KindAborted, a) }

// NewPromoteRecord builds a standby-promotion record.
func NewPromoteRecord(p PromoteInfo) (Record, error) { return newJSONRecord(KindPromote, p) }

// sealRecord is the clean-shutdown marker.
func sealRecord() Record { return Record{Kind: KindSeal} }

// AppendTickBody appends the binary encoding of a tick checkpoint:
//
//	uvarint(tick) uvarint(readings) uvarint(batches)
//	uvarint(len(shard)) then 8 little-endian bytes per shard (float64 bits)
func AppendTickBody(dst []byte, cp TickCheckpoint) []byte {
	dst = binary.AppendUvarint(dst, uint64(cp.Tick))
	dst = binary.AppendUvarint(dst, uint64(cp.Readings))
	dst = binary.AppendUvarint(dst, uint64(cp.Batches))
	dst = binary.AppendUvarint(dst, uint64(len(cp.Shard)))
	for _, v := range cp.Shard {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// NewTickRecord builds a meter-batch checkpoint record.
func NewTickRecord(cp TickCheckpoint) Record {
	return Record{Kind: KindTick, Body: AppendTickBody(nil, cp)}
}

// DecodeTickBody parses a binary tick checkpoint body.
func DecodeTickBody(body []byte) (TickCheckpoint, error) {
	var cp TickCheckpoint
	header := [3]uint64{}
	for i := range header {
		v, n := binary.Uvarint(body)
		if n <= 0 {
			return TickCheckpoint{}, fmt.Errorf("%w: tick checkpoint header", ErrCorrupt)
		}
		header[i] = v
		body = body[n:]
	}
	cp.Tick, cp.Readings, cp.Batches = int(header[0]), int64(header[1]), int64(header[2])
	shards, n := binary.Uvarint(body)
	if n <= 0 {
		return TickCheckpoint{}, fmt.Errorf("%w: tick checkpoint shard vector", ErrCorrupt)
	}
	body = body[n:]
	// Division, not multiplication: 8*shards could wrap for an absurd
	// declared count, and recovery must never panic on a crafted body.
	if uint64(len(body))%8 != 0 || shards != uint64(len(body))/8 {
		return TickCheckpoint{}, fmt.Errorf("%w: tick checkpoint shard vector", ErrCorrupt)
	}
	cp.Shard = make([]float64, shards)
	for i := range cp.Shard {
		cp.Shard[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
	}
	return cp, nil
}

// DecodeScenario parses a scenario-registration record body.
func DecodeScenario(r Record) (ScenarioInfo, error) {
	var s ScenarioInfo
	return s, decodeJSON(r, KindScenario, &s)
}

// DecodeTopology parses a topology record body.
func DecodeTopology(r Record) (TopologyInfo, error) {
	var t TopologyInfo
	return t, decodeJSON(r, KindTopology, &t)
}

// DecodeSession parses a session-outcome record body.
func DecodeSession(r Record) (SessionOutcome, error) {
	var o SessionOutcome
	return o, decodeJSON(r, KindSession, &o)
}

// DecodeReneg parses a re-negotiation record body.
func DecodeReneg(r Record) (RenegOutcome, error) {
	var o RenegOutcome
	return o, decodeJSON(r, KindReneg, &o)
}

// DecodeAbort parses an aborted-session record body.
func DecodeAbort(r Record) (AbortInfo, error) {
	var a AbortInfo
	return a, decodeJSON(r, KindAborted, &a)
}

// DecodePromote parses a standby-promotion record body.
func DecodePromote(r Record) (PromoteInfo, error) {
	var p PromoteInfo
	return p, decodeJSON(r, KindPromote, &p)
}

// DecodeTick parses a tick-checkpoint record.
func DecodeTick(r Record) (TickCheckpoint, error) {
	if r.Kind != KindTick {
		return TickCheckpoint{}, fmt.Errorf("%w: decoding %s as tick", ErrCorrupt, r.Kind)
	}
	return DecodeTickBody(r.Body)
}

// decodeJSON unmarshals a cold-path body after checking the kind tag.
func decodeJSON(r Record, want Kind, into any) error {
	if r.Kind != want {
		return fmt.Errorf("%w: decoding %s as %s", ErrCorrupt, r.Kind, want)
	}
	if err := json.Unmarshal(r.Body, into); err != nil {
		return fmt.Errorf("%w: %s body: %v", ErrCorrupt, want, err)
	}
	return nil
}
