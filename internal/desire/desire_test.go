package desire

import (
	"errors"
	"testing"

	"loadbalance/internal/kb"
)

// testOntology declares the predicates used across the component tests.
func testOntology(t *testing.T) *kb.Ontology {
	t.Helper()
	o := kb.NewOntology()
	steps := []error{
		o.DeclareSort("customer", kb.SortAny),
		o.DeclareConst("c1", "customer"),
		o.DeclareConst("c2", "customer"),
		o.DeclarePred("offered", kb.SortNumber, kb.SortNumber),
		o.DeclarePred("required", "customer", kb.SortNumber, kb.SortNumber),
		o.DeclarePred("acceptable", "customer", kb.SortNumber),
		o.DeclarePred("best_cutdown", "customer", kb.SortNumber),
		o.DeclarePred("announced", kb.SortNumber, kb.SortNumber),
		o.DeclarePred("chosen", "customer", kb.SortNumber),
	}
	for _, err := range steps {
		if err != nil {
			t.Fatalf("ontology: %v", err)
		}
	}
	return o
}

// acceptabilityBase is the CA acceptability knowledge used in several tests.
func acceptabilityBase(t *testing.T) *kb.Base {
	t.Helper()
	base, err := kb.NewBase("acceptability", kb.Rule{
		Name: "acceptable_if_reward_clears",
		If: []kb.Literal{
			kb.Pos(kb.A("required", kb.V("C"), kb.V("Cut"), kb.V("Req"))),
			kb.Pos(kb.A("offered", kb.V("Cut"), kb.V("Off"))),
		},
		Guards: []kb.Guard{{Op: kb.OpGeq, Left: kb.V("Off"), Right: kb.V("Req")}},
		Then:   []kb.Atom{kb.A("acceptable", kb.V("C"), kb.V("Cut"))},
	})
	if err != nil {
		t.Fatalf("base: %v", err)
	}
	return base
}

func TestReasoningActivatePublishesOnlyOutputPreds(t *testing.T) {
	o := testOntology(t)
	comp := NewReasoning("determine_acceptability", o, acceptabilityBase(t), "acceptable")
	seed := []kb.Fact{
		{Atom: kb.A("required", kb.C("c1"), kb.N(0.3), kb.N(10)), Truth: kb.True},
		{Atom: kb.A("required", kb.C("c1"), kb.N(0.4), kb.N(21)), Truth: kb.True},
		{Atom: kb.A("offered", kb.N(0.3), kb.N(12)), Truth: kb.True},
		{Atom: kb.A("offered", kb.N(0.4), kb.N(17)), Truth: kb.True},
	}
	out, err := Run(comp, seed)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(out) != 1 {
		t.Fatalf("output facts = %v, want exactly one", out)
	}
	want := kb.A("acceptable", kb.C("c1"), kb.N(0.3))
	if !out[0].Atom.Equal(want) {
		t.Fatalf("output = %s, want %s", out[0].Atom, want)
	}
}

func TestReasoningActivateIsIdempotent(t *testing.T) {
	o := testOntology(t)
	comp := NewReasoning("determine_acceptability", o, acceptabilityBase(t), "acceptable")
	if _, err := Run(comp, []kb.Fact{
		{Atom: kb.A("required", kb.C("c1"), kb.N(0.3), kb.N(10)), Truth: kb.True},
		{Atom: kb.A("offered", kb.N(0.3), kb.N(12)), Truth: kb.True},
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	changed, err := comp.Activate()
	if err != nil {
		t.Fatalf("second Activate: %v", err)
	}
	if changed {
		t.Fatal("second activation with unchanged input must not change output")
	}
}

func TestTaskComponent(t *testing.T) {
	o := testOntology(t)
	// A calculation component: pick the highest acceptable cut-down
	// (the Customer Agent's "choose appropriate bid" task).
	pick := NewTask("select_bid", o, func(in, out *kb.Store) (bool, error) {
		best := make(map[string]float64)
		for _, a := range in.Query(kb.A("acceptable", kb.V("C"), kb.V("Cut"))) {
			c, cut := a.Args[0].Name, a.Args[1].Num
			if cut >= best[c] {
				best[c] = cut
			}
		}
		changed := false
		for c, cut := range best {
			atom := kb.A("best_cutdown", kb.C(c), kb.N(cut))
			if out.Holds(atom) {
				continue
			}
			if err := out.Assert(atom, kb.True); err != nil {
				return changed, err
			}
			changed = true
		}
		return changed, nil
	})
	out, err := Run(pick, []kb.Fact{
		{Atom: kb.A("acceptable", kb.C("c1"), kb.N(0.1)), Truth: kb.True},
		{Atom: kb.A("acceptable", kb.C("c1"), kb.N(0.4)), Truth: kb.True},
		{Atom: kb.A("acceptable", kb.C("c1"), kb.N(0.2)), Truth: kb.True},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(out) != 1 || !out[0].Atom.Equal(kb.A("best_cutdown", kb.C("c1"), kb.N(0.4))) {
		t.Fatalf("output = %v, want best_cutdown(c1, 0.4)", out)
	}
}

// TestComposedPipeline wires the acceptability reasoner and the bid selector
// into a composed component mirroring the CA's "determine bid" composition
// (Figure 5 of the paper): announce flows in, a chosen cut-down flows out.
func TestComposedPipeline(t *testing.T) {
	o := testOntology(t)
	comp := NewComposed("determine_bid", o, 0)

	accept := NewReasoning("determine_acceptability", o, acceptabilityBase(t), "acceptable")
	pick := NewTask("select_bid", o, func(in, out *kb.Store) (bool, error) {
		best := make(map[string]float64)
		for _, a := range in.Query(kb.A("acceptable", kb.V("C"), kb.V("Cut"))) {
			c, cut := a.Args[0].Name, a.Args[1].Num
			if cut >= best[c] {
				best[c] = cut
			}
		}
		changed := false
		for c, cut := range best {
			atom := kb.A("best_cutdown", kb.C(c), kb.N(cut))
			if out.Holds(atom) {
				continue
			}
			if err := out.Assert(atom, kb.True); err != nil {
				return changed, err
			}
			changed = true
		}
		return changed, nil
	})
	if err := comp.AddChild(accept); err != nil {
		t.Fatal(err)
	}
	if err := comp.AddChild(pick); err != nil {
		t.Fatal(err)
	}
	links := []Link{
		{
			Name: "announcement_in",
			From: Endpoint{Component: "", Port: In},
			To:   Endpoint{Component: "determine_acceptability", Port: In},
			Map:  []PredMap{{From: "announced", To: "offered"}, {From: "required", To: "required"}},
		},
		{
			Name: "acceptability_to_selection",
			From: Endpoint{Component: "determine_acceptability", Port: Out},
			To:   Endpoint{Component: "select_bid", Port: In},
		},
		{
			Name: "bid_out",
			From: Endpoint{Component: "select_bid", Port: Out},
			To:   Endpoint{Component: "", Port: Out},
			Map:  []PredMap{{From: "best_cutdown", To: "chosen"}},
		},
	}
	for _, l := range links {
		if err := comp.AddLink(l); err != nil {
			t.Fatalf("AddLink(%s): %v", l.Name, err)
		}
	}
	err := comp.SetControl([]Step{
		{Transfer: "announcement_in"},
		{Activate: "determine_acceptability"},
		{Transfer: "acceptability_to_selection"},
		{Activate: "select_bid"},
		{Transfer: "bid_out"},
	})
	if err != nil {
		t.Fatalf("SetControl: %v", err)
	}

	out, err := Run(comp, []kb.Fact{
		{Atom: kb.A("required", kb.C("c1"), kb.N(0.2), kb.N(5)), Truth: kb.True},
		{Atom: kb.A("required", kb.C("c1"), kb.N(0.3), kb.N(10)), Truth: kb.True},
		{Atom: kb.A("required", kb.C("c1"), kb.N(0.4), kb.N(21)), Truth: kb.True},
		{Atom: kb.A("announced", kb.N(0.2), kb.N(8.5)), Truth: kb.True},
		{Atom: kb.A("announced", kb.N(0.3), kb.N(12.75)), Truth: kb.True},
		{Atom: kb.A("announced", kb.N(0.4), kb.N(17)), Truth: kb.True},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(out) != 1 || !out[0].Atom.Equal(kb.A("chosen", kb.C("c1"), kb.N(0.3))) {
		t.Fatalf("output = %v, want chosen(c1, 0.3)", out)
	}
}

// TestComposedSecondRound feeds a better announcement into an already-run
// composition: the output must move to the now-acceptable higher cut-down,
// exactly as the paper's CA does between rounds (Figures 8-9).
func TestComposedSecondRound(t *testing.T) {
	o := testOntology(t)
	comp := buildBidComposition(t, o)
	if _, err := Run(comp, []kb.Fact{
		{Atom: kb.A("required", kb.C("c1"), kb.N(0.3), kb.N(10)), Truth: kb.True},
		{Atom: kb.A("required", kb.C("c1"), kb.N(0.4), kb.N(21)), Truth: kb.True},
		{Atom: kb.A("announced", kb.N(0.3), kb.N(12.75)), Truth: kb.True},
		{Atom: kb.A("announced", kb.N(0.4), kb.N(17)), Truth: kb.True},
	}); err != nil {
		t.Fatalf("round 1: %v", err)
	}
	out, err := Run(comp, []kb.Fact{
		{Atom: kb.A("announced", kb.N(0.4), kb.N(24.8)), Truth: kb.True},
	})
	if err != nil {
		t.Fatalf("round 2: %v", err)
	}
	found := false
	for _, f := range out {
		if f.Atom.Equal(kb.A("chosen", kb.C("c1"), kb.N(0.4))) {
			found = true
		}
	}
	if !found {
		t.Fatalf("round 2 output = %v, want chosen(c1, 0.4)", out)
	}
}

func buildBidComposition(t *testing.T, o *kb.Ontology) *Composed {
	t.Helper()
	comp := NewComposed("determine_bid", o, 0)
	accept := NewReasoning("determine_acceptability", o, acceptabilityBase(t), "acceptable")
	pick := NewTask("select_bid", o, func(in, out *kb.Store) (bool, error) {
		best := make(map[string]float64)
		for _, a := range in.Query(kb.A("acceptable", kb.V("C"), kb.V("Cut"))) {
			c, cut := a.Args[0].Name, a.Args[1].Num
			if cut >= best[c] {
				best[c] = cut
			}
		}
		changed := false
		for c, cut := range best {
			atom := kb.A("best_cutdown", kb.C(c), kb.N(cut))
			if out.Holds(atom) {
				continue
			}
			if err := out.Assert(atom, kb.True); err != nil {
				return changed, err
			}
			changed = true
		}
		return changed, nil
	})
	if err := comp.AddChild(accept); err != nil {
		t.Fatal(err)
	}
	if err := comp.AddChild(pick); err != nil {
		t.Fatal(err)
	}
	for _, l := range []Link{
		{Name: "announcement_in", From: Endpoint{Port: In}, To: Endpoint{Component: "determine_acceptability", Port: In},
			Map: []PredMap{{From: "announced", To: "offered"}, {From: "required", To: "required"}}},
		{Name: "acceptability_to_selection", From: Endpoint{Component: "determine_acceptability", Port: Out}, To: Endpoint{Component: "select_bid", Port: In}},
		{Name: "bid_out", From: Endpoint{Component: "select_bid", Port: Out}, To: Endpoint{Port: Out},
			Map: []PredMap{{From: "best_cutdown", To: "chosen"}}},
	} {
		if err := comp.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	if err := comp.SetControl([]Step{
		{Transfer: "announcement_in"},
		{Activate: "determine_acceptability"},
		{Transfer: "acceptability_to_selection"},
		{Activate: "select_bid"},
		{Transfer: "bid_out"},
	}); err != nil {
		t.Fatal(err)
	}
	return comp
}

func TestAddLinkValidation(t *testing.T) {
	o := testOntology(t)
	comp := NewComposed("c", o, 0)
	tests := []struct {
		name string
		give Link
	}{
		{name: "unnamed", give: Link{From: Endpoint{Port: In}, To: Endpoint{Port: Out}}},
		{name: "unknown source component", give: Link{Name: "l", From: Endpoint{Component: "ghost", Port: Out}, To: Endpoint{Port: Out}}},
		{name: "own output as source", give: Link{Name: "l", From: Endpoint{Port: Out}, To: Endpoint{Port: Out}}},
		{name: "own input as target", give: Link{Name: "l", From: Endpoint{Port: In}, To: Endpoint{Port: In}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := comp.AddLink(tt.give); err == nil {
				t.Fatalf("AddLink(%+v) should fail", tt.give)
			}
		})
	}
}

func TestSetControlValidation(t *testing.T) {
	o := testOntology(t)
	comp := NewComposed("c", o, 0)
	if err := comp.SetControl([]Step{{}}); err == nil {
		t.Fatal("empty step should fail")
	}
	if err := comp.SetControl([]Step{{Activate: "ghost"}}); !errors.Is(err, ErrUnknownComponent) {
		t.Fatalf("unknown component error = %v", err)
	}
	if err := comp.SetControl([]Step{{Transfer: "ghost"}}); err == nil {
		t.Fatal("unknown link should fail")
	}
	if err := comp.SetControl([]Step{{Activate: "a", Transfer: "l"}}); err == nil {
		t.Fatal("step with both fields should fail")
	}
}

func TestDuplicateChildAndLink(t *testing.T) {
	o := testOntology(t)
	comp := NewComposed("c", o, 0)
	task := NewTask("t", o, func(in, out *kb.Store) (bool, error) { return false, nil })
	if err := comp.AddChild(task); err != nil {
		t.Fatal(err)
	}
	if err := comp.AddChild(NewTask("t", o, nil)); err == nil {
		t.Fatal("duplicate child should fail")
	}
	l := Link{Name: "l", From: Endpoint{Port: In}, To: Endpoint{Component: "t", Port: In}}
	if err := comp.AddLink(l); err != nil {
		t.Fatal(err)
	}
	if err := comp.AddLink(l); err == nil {
		t.Fatal("duplicate link should fail")
	}
}

func TestChildLookup(t *testing.T) {
	o := testOntology(t)
	comp := NewComposed("c", o, 0)
	task := NewTask("t", o, func(in, out *kb.Store) (bool, error) { return false, nil })
	if err := comp.AddChild(task); err != nil {
		t.Fatal(err)
	}
	got, err := comp.Child("t")
	if err != nil || got.Name() != "t" {
		t.Fatalf("Child = %v, %v", got, err)
	}
	if _, err := comp.Child("ghost"); !errors.Is(err, ErrUnknownComponent) {
		t.Fatalf("missing child error = %v", err)
	}
}

func TestComposedDetectsNonQuiescence(t *testing.T) {
	o := testOntology(t)
	comp := NewComposed("c", o, 2)
	n := 0.0
	task := NewTask("counter", o, func(in, out *kb.Store) (bool, error) {
		n++
		if err := out.Assert(kb.A("offered", kb.N(n), kb.N(n)), kb.True); err != nil {
			return false, err
		}
		return true, nil // always reports change: never quiesces
	})
	if err := comp.AddChild(task); err != nil {
		t.Fatal(err)
	}
	if err := comp.SetControl([]Step{{Activate: "counter"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := comp.Activate(); !errors.Is(err, ErrNoFixpoint) {
		t.Fatalf("error = %v, want ErrNoFixpoint", err)
	}
}

func TestRunSeedsInvalidFact(t *testing.T) {
	o := testOntology(t)
	comp := NewComposed("c", o, 0)
	if _, err := Run(comp, []kb.Fact{{Atom: kb.A("nosuch", kb.N(1)), Truth: kb.True}}); err == nil {
		t.Fatal("seeding an undeclared predicate should fail")
	}
}

func TestPortString(t *testing.T) {
	if In.String() != "in" || Out.String() != "out" || Port(9).String() != "?" {
		t.Fatal("Port.String mismatch")
	}
}

// TestReasoningPublishesNegativeConclusions exercises DESIRE's explicit
// negative conclusions (ThenFalse) through a component.
func TestReasoningPublishesNegativeConclusions(t *testing.T) {
	o := kb.NewOntology()
	if err := o.DeclarePred("peak_expected", kb.SortNumber); err != nil {
		t.Fatal(err)
	}
	if err := o.DeclarePred("idle", kb.SortNumber); err != nil {
		t.Fatal(err)
	}
	base, err := kb.NewBase("opc", kb.Rule{
		Name:      "peak_means_not_idle",
		If:        []kb.Literal{kb.Pos(kb.A("peak_expected", kb.V("X")))},
		ThenFalse: []kb.Atom{kb.A("idle", kb.V("X"))},
	})
	if err != nil {
		t.Fatal(err)
	}
	comp := NewReasoning("own_process_control", o, base, "idle")
	out, err := Run(comp, []kb.Fact{
		{Atom: kb.A("peak_expected", kb.N(1)), Truth: kb.True},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Truth != kb.False || !out[0].Atom.Equal(kb.A("idle", kb.N(1))) {
		t.Fatalf("output = %v, want idle(1)=false", out)
	}
}
