package trace

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestBucketIndexMonotoneAndBounded(t *testing.T) {
	prev := -1
	for shift := 0; shift < 40; shift++ {
		for _, off := range []uint64{0, 1} {
			ns := uint64(1)<<shift + off
			i := bucketIndex(ns)
			if i < 0 || i >= nBuckets {
				t.Fatalf("bucketIndex(%d) = %d out of range", ns, i)
			}
			if i < prev {
				t.Fatalf("bucketIndex not monotone at %d: %d < %d", ns, i, prev)
			}
			prev = i
		}
	}
	if bucketIndex(0) != 0 {
		t.Fatal("0 should land in the underflow bucket")
	}
	if bucketIndex(math.MaxUint64) != nBuckets-1 {
		t.Fatal("huge value should land in the overflow bucket")
	}
}

func TestBucketBoundsContainValues(t *testing.T) {
	// Every value must fall strictly below its bucket's upper bound and at
	// or above the previous bucket's upper bound.
	for _, ns := range []uint64{1500, 4096, 5000, 1 << 20, 3 << 20, 1e9, 30e9} {
		i := bucketIndex(ns)
		ub := bucketUpperNs(i)
		if ub != 0 && ns >= ub {
			t.Fatalf("ns %d >= upper bound %d of bucket %d", ns, ub, i)
		}
		if i > 0 {
			if lb := bucketUpperNs(i - 1); ns < lb {
				t.Fatalf("ns %d < lower bound %d of bucket %d", ns, lb, i)
			}
		}
	}
}

func TestQuantileAccuracy(t *testing.T) {
	h := &Histogram{family: "x_seconds"}
	// 1000 observations uniform in [1ms, 2ms): p50 should sit near 1.5ms
	// within the 12.5% bucket resolution.
	for i := 0; i < 1000; i++ {
		h.Observe(time.Millisecond + time.Duration(i)*time.Microsecond)
	}
	p50 := h.Quantile(0.50)
	if p50 < 0.0012 || p50 > 0.0018 {
		t.Fatalf("p50 = %g s, want ~0.0015", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < p50 {
		t.Fatalf("p99 %g < p50 %g", p99, p50)
	}
	if h.Quantile(0.99) > 0.0025 {
		t.Fatalf("p99 = %g s, too high", p99)
	}
}

func TestEmptyHistogramQuantileZero(t *testing.T) {
	h := &Histogram{family: "x_seconds"}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %g", q)
	}
}

func TestRegistryExpositionFormat(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("grid_tick_seconds")
	h.Observe(5 * time.Millisecond)
	h.Observe(7 * time.Millisecond)
	le := r.HistogramL("experiment_duration_seconds", "exp", "e14")
	le.Observe(time.Second)

	var b strings.Builder
	r.WriteMetrics(&b)
	out := b.String()

	for _, want := range []string{
		"# TYPE grid_tick_seconds histogram\n",
		"# TYPE experiment_duration_seconds histogram\n",
		"grid_tick_seconds_count 2\n",
		`grid_tick_seconds_bucket{le="+Inf"} 2`,
		`experiment_duration_seconds_bucket{exp="e14",le="+Inf"} 1`,
		`experiment_duration_seconds_count{exp="e14"} 1`,
		"# TYPE grid_tick_seconds_p50 gauge\n",
		"# TYPE grid_tick_seconds_p99 gauge\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	// _sum must be in seconds: 12ms total.
	if !strings.Contains(out, "grid_tick_seconds_sum 0.012") {
		t.Fatalf("sum not in seconds:\n%s", out)
	}
}

func TestRegistryReturnsSameInstance(t *testing.T) {
	r := NewRegistry()
	a := r.HistogramL("f_seconds", "exp", "e1")
	b := r.HistogramL("f_seconds", "exp", "e1")
	c := r.HistogramL("f_seconds", "exp", "e2")
	if a != b {
		t.Fatal("same family+label returned distinct histograms")
	}
	if a == c {
		t.Fatal("different labels shared a histogram")
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := &Histogram{family: "bench_seconds"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) * time.Nanosecond)
	}
}

func BenchmarkSpanStartEnd(b *testing.B) {
	Enable("bench", 1024)
	defer Disable()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := Root("bench")
		sp.End()
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := Root("bench")
		sp.End()
	}
}
