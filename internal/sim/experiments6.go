package sim

import (
	"encoding/json"
	"fmt"
	"sort"

	"loadbalance/internal/cluster"
	"loadbalance/internal/core"
	"loadbalance/internal/protocol"
)

// E15DistributedNegotiation exercises the distributed deployment the paper's
// Discussion aims at ("large open distributed industrial systems"): one
// seeded scenario negotiated three ways — flat in-process, through the
// in-process concentrator tree, and through a concentrator tier whose every
// member sits behind its own pair of TCP connections on the binary wire
// protocol. The table shows all three reach the identical outcome; the
// distributed row additionally reports the transport's frame/byte counts and
// whether its delivered awards are byte-identical to the flat run's — the
// correctness bar for moving the tier into separate OS processes.
func E15DistributedNegotiation(n, shards int, seed int64) (*Table, error) {
	if shards < 1 {
		shards = 4
	}
	if n < shards {
		n = shards
	}
	scenario := func() (core.Scenario, error) {
		return core.SyntheticScenario(core.SyntheticConfig{N: n, Seed: seed})
	}

	t := &Table{
		Name:    fmt.Sprintf("E15DistributedNegotiation: %d customers, %d concentrators over TCP", n, shards),
		Columns: []string{"mode", "outcome", "rounds", "overuse_kwh", "reward_paid", "messages", "wire_frames", "wire_kb", "awards_vs_flat"},
		Notes:   "flat, in-proc sharded and TCP-distributed negotiations of one seeded scenario; awards_vs_flat compares the delivered award bytes",
	}

	s, err := scenario()
	if err != nil {
		return nil, err
	}
	flat, err := core.Run(s)
	if err != nil {
		return nil, err
	}
	flatAwards, err := canonicalAwards(flat.Awards)
	if err != nil {
		return nil, err
	}
	t.AddRowF("flat", flat.Outcome, flat.Rounds, flat.FinalOveruseKWh,
		protocol.TotalRewardPaid(flat.Awards), flat.Bus.Sent, "-", "-", "(reference)")

	s, err = scenario()
	if err != nil {
		return nil, err
	}
	inproc, err := cluster.Run(cluster.Config{Scenario: s, Shards: shards})
	if err != nil {
		return nil, err
	}
	t.AddRowF("sharded", inproc.Outcome, inproc.Rounds, inproc.FinalOveruseKWh,
		protocol.TotalRewardPaid(inproc.Awards), inproc.Messages(), "-", "-", "(bids match)")

	s, err = scenario()
	if err != nil {
		return nil, err
	}
	dist, err := cluster.RunDistributed(cluster.DistributedConfig{Scenario: s, Shards: shards})
	if err != nil {
		return nil, err
	}
	for _, e := range dist.AgentErrors {
		return nil, fmt.Errorf("sim: distributed agent error: %w", e)
	}
	distAwards := make([]protocol.CustomerAward, 0, len(dist.MemberAwards))
	names := make([]string, 0, len(dist.MemberAwards))
	for name := range dist.MemberAwards {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		distAwards = append(distAwards, protocol.CustomerAward{Customer: name, Award: dist.MemberAwards[name]})
	}
	distJSON, err := canonicalAwards(distAwards)
	if err != nil {
		return nil, err
	}
	match := "DIFFER"
	if distJSON == flatAwards {
		match = "byte-identical"
	}
	frames := dist.RootWire.FramesIn + dist.RootWire.FramesOut + dist.MemberWire.FramesIn + dist.MemberWire.FramesOut
	kb := float64(dist.RootWire.BytesIn+dist.RootWire.BytesOut+dist.MemberWire.BytesIn+dist.MemberWire.BytesOut) / 1024
	t.AddRowF("distributed", dist.Outcome, dist.Rounds, dist.FinalOveruseKWh,
		protocol.TotalRewardPaid(distAwards), dist.Messages(), frames, kb, match)
	return t, nil
}

// canonicalAwards renders an award list as comparable JSON.
func canonicalAwards(awards []protocol.CustomerAward) (string, error) {
	b, err := json.Marshal(awards)
	if err != nil {
		return "", err
	}
	return string(b), nil
}
