package verify

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"loadbalance/internal/core"
	"loadbalance/internal/protocol"
	"loadbalance/internal/utilityagent"
)

func params() protocol.Params {
	return core.PaperParams()
}

// goodHistory builds a legal two-round history.
func goodHistory() []protocol.RoundRecord {
	t1, _ := protocol.StandardTable(42.5)
	t2, _ := t1.Update(0.215, params())
	return []protocol.RoundRecord{
		{Round: 1, Table: t1, Bids: map[string]float64{"a": 0.2}, OveruseKWh: 21.5, Outcome: protocol.OutcomeContinue},
		{Round: 2, Table: t2, Bids: map[string]float64{"a": 0.4}, OveruseKWh: 12, Outcome: protocol.OutcomeConverged},
	}
}

func TestCheckRewardTableTraceAcceptsLegalTrace(t *testing.T) {
	rep := CheckRewardTableTrace(goodHistory(), params())
	if !rep.OK() {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if len(rep.Checked) != 6 {
		t.Fatalf("checked %d properties, want 6", len(rep.Checked))
	}
	if rep.Error() != nil {
		t.Fatal("Error should be nil for a clean report")
	}
}

func TestUAMonotonicityViolation(t *testing.T) {
	h := goodHistory()
	// Regress the round-2 table.
	h[1].Table.Entries[4].Reward = 1
	rep := CheckRewardTableTrace(h, params())
	if rep.OK() {
		t.Fatal("regressed table must be flagged")
	}
	if err := rep.Error(); !errors.Is(err, ErrViolation) || !strings.Contains(err.Error(), "ua_monotonic_tables") {
		t.Fatalf("error = %v", err)
	}
}

func TestCAMonotonicityViolation(t *testing.T) {
	h := goodHistory()
	h[1].Bids = map[string]float64{"a": 0.1} // regressed bid
	rep := CheckRewardTableTrace(h, params())
	if rep.OK() || !strings.Contains(rep.Error().Error(), "ca_monotonic_bids") {
		t.Fatalf("report = %+v", rep)
	}
}

func TestTerminationViolations(t *testing.T) {
	h := goodHistory()
	h[1].Outcome = protocol.OutcomeContinue // never terminates
	rep := CheckRewardTableTrace(h, params())
	if rep.OK() || !strings.Contains(rep.Error().Error(), "termination") {
		t.Fatalf("report = %+v", rep)
	}

	h = goodHistory()
	h[0].Outcome = protocol.OutcomeConverged // terminal mid-history
	rep = CheckRewardTableTrace(h, params())
	if rep.OK() {
		t.Fatal("terminal mid-history must be flagged")
	}

	rep = CheckRewardTableTrace(nil, params())
	if rep.OK() {
		t.Fatal("empty history must be flagged")
	}
}

func TestContiguousRoundsViolation(t *testing.T) {
	h := goodHistory()
	h[1].Round = 5
	rep := CheckRewardTableTrace(h, params())
	if rep.OK() || !strings.Contains(rep.Error().Error(), "contiguous_rounds") {
		t.Fatalf("report = %+v", rep)
	}
}

func TestRewardCeilingViolation(t *testing.T) {
	h := goodHistory()
	h[1].Table.Entries[4].Reward = 500 // way above 125×0.4
	rep := CheckRewardTableTrace(h, params())
	if rep.OK() || !strings.Contains(rep.Error().Error(), "reward_ceiling") {
		t.Fatalf("report = %+v", rep)
	}
}

func TestOveruseConsistencyViolation(t *testing.T) {
	h := goodHistory()
	h[1].OveruseKWh = 40 // grew
	rep := CheckRewardTableTrace(h, params())
	if rep.OK() || !strings.Contains(rep.Error().Error(), "overuse_consistency") {
		t.Fatalf("report = %+v", rep)
	}
}

func TestCheckProactiveness(t *testing.T) {
	if err := CheckProactiveness(0.35, 0.13, true); err != nil {
		t.Fatalf("warranted negotiation flagged: %v", err)
	}
	if err := CheckProactiveness(0.05, 0.13, false); err != nil {
		t.Fatalf("unwarranted idle flagged: %v", err)
	}
	if err := CheckProactiveness(0.35, 0.13, false); !errors.Is(err, ErrViolation) {
		t.Fatal("missed negotiation must be flagged")
	}
	if err := CheckProactiveness(0.05, 0.13, true); !errors.Is(err, ErrViolation) {
		t.Fatal("overeager negotiation must be flagged")
	}
}

func TestCheckRFBTrace(t *testing.T) {
	good := []protocol.RFBRound{
		{Round: 1, Bids: map[string]float64{"a": 12}, Outcome: protocol.RFBContinue},
		{Round: 2, Bids: map[string]float64{"a": 11}, Outcome: protocol.RFBConverged},
	}
	if rep := CheckRFBTrace(good); !rep.OK() {
		t.Fatalf("violations: %v", rep.Violations)
	}
	bad := []protocol.RFBRound{
		{Round: 1, Bids: map[string]float64{"a": 11}, Outcome: protocol.RFBContinue},
		{Round: 2, Bids: map[string]float64{"a": 12}, Outcome: protocol.RFBConverged}, // grew
	}
	if rep := CheckRFBTrace(bad); rep.OK() {
		t.Fatal("growing ymin must be flagged")
	}
	if rep := CheckRFBTrace(nil); rep.OK() {
		t.Fatal("empty history must be flagged")
	}
}

func TestCheckRFBTraceTerminationAndRounds(t *testing.T) {
	nonTerminal := []protocol.RFBRound{
		{Round: 1, Bids: map[string]float64{"a": 12}, Outcome: protocol.RFBContinue},
	}
	rep := CheckRFBTrace(nonTerminal)
	if rep.OK() || !strings.Contains(rep.Error().Error(), "termination") {
		t.Fatalf("non-terminal final round must fail termination, report = %+v", rep)
	}

	gapped := []protocol.RFBRound{
		{Round: 1, Bids: map[string]float64{"a": 12}, Outcome: protocol.RFBContinue},
		{Round: 3, Bids: map[string]float64{"a": 11}, Outcome: protocol.RFBConverged},
	}
	rep = CheckRFBTrace(gapped)
	if rep.OK() || !strings.Contains(rep.Error().Error(), "contiguous_rounds") {
		t.Fatalf("gapped round numbering must fail contiguity, report = %+v", rep)
	}

	// Every violation wraps ErrViolation so callers can errors.Is it.
	if !errors.Is(rep.Error(), ErrViolation) {
		t.Fatalf("violations must wrap ErrViolation, got %v", rep.Error())
	}
}

// TestPaperScenarioTraceVerifies runs the canonical scenario end to end and
// verifies every protocol property on the real trace — the mechanised
// version of the companion paper's verification (E8).
func TestPaperScenarioTraceVerifies(t *testing.T) {
	s, err := core.PaperScenario()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	rep := CheckRewardTableTrace(res.History, s.Params)
	if !rep.OK() {
		t.Fatalf("violations on the paper trace: %v", rep.Violations)
	}
	if err := CheckProactiveness(0.35, s.Params.AllowedOveruseRatio, res.Rounds > 0); err != nil {
		t.Fatal(err)
	}
}

// TestRandomScenarioTracesVerify is the E8 property harness: random
// populations and parameters always produce traces satisfying every
// protocol property.
func TestRandomScenarioTracesVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("full runs are slow")
	}
	f := func(seedRaw uint8, nRaw uint8, betaRaw uint8) bool {
		n := int(nRaw%15) + 3
		beta := 0.5 + float64(betaRaw%40)/10
		s, err := core.PopulationScenario(core.PopulationConfig{
			N:      n,
			Seed:   int64(seedRaw),
			Margin: 0.2,
			Method: utilityagent.MethodRewardTable,
		})
		if err != nil {
			return false
		}
		s.Params.Beta = beta
		s.Timeout = 20 * time.Second
		res, err := core.Run(s)
		if err != nil {
			return false
		}
		if len(res.History) == 0 {
			// Population happened to be below the warrant threshold.
			return res.Outcome == "no negotiation needed"
		}
		return CheckRewardTableTrace(res.History, s.Params).OK()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestLossyTraceStillVerifies: even with message loss the recorded trace
// satisfies monotonicity and termination (the session model is the source
// of truth, not the lossy wire).
func TestLossyTraceStillVerifies(t *testing.T) {
	s, err := core.PaperScenario()
	if err != nil {
		t.Fatal(err)
	}
	s.DropRate = 0.15
	s.Seed = 99
	s.RoundTimeout = 25 * time.Millisecond
	s.Timeout = 20 * time.Second
	res, err := core.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) == 0 {
		t.Fatal("no trace recorded")
	}
	rep := CheckRewardTableTrace(res.History, s.Params)
	if !rep.OK() {
		t.Fatalf("violations under loss: %v", rep.Violations)
	}
}

func TestReportErrorAggregation(t *testing.T) {
	h := goodHistory()
	h[1].Table.Entries[4].Reward = 1 // breaks monotonicity AND consistency checks may cascade
	rep := CheckRewardTableTrace(h, params())
	if rep.OK() {
		t.Fatal("want violations")
	}
	if len(rep.Checked) != 6 {
		t.Fatalf("all properties must still be checked, got %d", len(rep.Checked))
	}
	var viol error = rep.Error()
	if viol == nil || !errors.Is(viol, ErrViolation) {
		t.Fatalf("aggregated error = %v", viol)
	}
}
